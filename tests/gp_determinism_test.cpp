// The global placer's determinism contract: positions are
// byte-identical across ThreadPool sizes and across repeated runs with
// the same seed. The force kernels are owner-computes (per-body gather
// in fixed order) and every reduction folds fixed-size chunks in chunk
// order, so neither the pool size nor the `jobs` lane count may change
// a single bit of the output — the same contract the batch runtime
// established for the flow×topology matrix.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "netlist/netlist_builder.h"
#include "netlist/topologies.h"
#include "placement/global_placer.h"
#include "runtime/thread_pool.h"

namespace qgdp {
namespace {

/// All component coordinates in netlist order.
std::vector<double> layout_coords(const QuantumNetlist& nl) {
  std::vector<double> out;
  out.reserve(2 * nl.component_count());
  for (const auto& q : nl.qubits()) {
    out.push_back(q.pos.x);
    out.push_back(q.pos.y);
  }
  for (const auto& b : nl.blocks()) {
    out.push_back(b.pos.x);
    out.push_back(b.pos.y);
  }
  return out;
}

/// Byte-level equality (stricter than ==: distinguishes -0.0 / 0.0).
bool bytes_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

std::vector<double> place_with_pool(const DeviceSpec& spec, std::size_t pool_threads) {
  QuantumNetlist nl = build_netlist(spec);
  GlobalPlacerOptions opt;
  opt.seed = 7u;
  opt.jobs = 0;  // one lane per pool thread
  ThreadPool pool(pool_threads);
  GlobalPlacer(opt, pool).place(nl);
  return layout_coords(nl);
}

class GpDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(GpDeterminism, ByteIdenticalAcrossThreadPoolSizes) {
  const auto spec = topology_by_name(GetParam());
  ASSERT_TRUE(spec.has_value()) << GetParam();
  const auto reference = place_with_pool(*spec, 1);
  ASSERT_FALSE(reference.empty());
  for (const std::size_t threads : {4u, 8u}) {
    const auto coords = place_with_pool(*spec, threads);
    EXPECT_TRUE(bytes_equal(reference, coords))
        << GetParam() << ": positions differ between pool sizes 1 and " << threads;
  }
}

TEST_P(GpDeterminism, ByteIdenticalAcrossRepeatedRuns) {
  const auto spec = topology_by_name(GetParam());
  ASSERT_TRUE(spec.has_value()) << GetParam();
  const auto first = place_with_pool(*spec, 4);
  const auto second = place_with_pool(*spec, 4);
  EXPECT_TRUE(bytes_equal(first, second))
      << GetParam() << ": repeated runs with the same seed differ";
}

TEST_P(GpDeterminism, ByteIdenticalAcrossJobCounts) {
  const auto spec = topology_by_name(GetParam());
  ASSERT_TRUE(spec.has_value()) << GetParam();
  std::vector<std::vector<double>> runs;
  for (const std::size_t jobs : {1u, 3u, 8u}) {
    QuantumNetlist nl = build_netlist(*spec);
    GlobalPlacerOptions opt;
    opt.seed = 7u;
    opt.jobs = jobs;
    GlobalPlacer(opt).place(nl);
    runs.push_back(layout_coords(nl));
  }
  EXPECT_TRUE(bytes_equal(runs[0], runs[1])) << GetParam() << ": jobs 1 vs 3 differ";
  EXPECT_TRUE(bytes_equal(runs[0], runs[2])) << GetParam() << ": jobs 1 vs 8 differ";
}

// One paper device and one kilo-qubit-family instance (the CI
// scaling-smoke job re-checks 16x27 end-to-end via --dump-gp diffs).
INSTANTIATE_TEST_SUITE_P(Topologies, GpDeterminism,
                         ::testing::Values(std::string("Falcon"),
                                           std::string("heavyhex-16x27")),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace qgdp
