// Tests for union-find, min-cost flow, constraint graphs, and the
// displacement LP solver (with duality-gap certification).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "graph/constraint_graph.h"
#include "graph/min_cost_flow.h"
#include "graph/union_find.h"

namespace qgdp {
namespace {

TEST(UnionFind, BasicMerge) {
  UnionFind uf(5);
  EXPECT_EQ(uf.component_count(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));
  EXPECT_EQ(uf.component_count(), 3u);
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(0, 3));
  EXPECT_EQ(uf.set_size(2), 3u);
}

TEST(UnionFind, EverythingMerges) {
  UnionFind uf(100);
  for (std::size_t i = 1; i < 100; ++i) uf.unite(0, i);
  EXPECT_EQ(uf.component_count(), 1u);
  EXPECT_EQ(uf.set_size(57), 100u);
}

TEST(MinCostFlow, SimplePath) {
  // s -(cap2,cost1)-> a -(cap2,cost1)-> t : 2 units at cost 4.
  MinCostFlow mcf(3);
  mcf.add_arc(0, 1, 2, 1);
  mcf.add_arc(1, 2, 2, 1);
  const auto r = mcf.solve(0, 2);
  EXPECT_EQ(r.flow, 2);
  EXPECT_EQ(r.cost, 4);
}

TEST(MinCostFlow, PrefersCheaperPath) {
  // Two parallel paths: cost 1 (cap 1) and cost 5 (cap 1).
  MinCostFlow mcf(4);
  mcf.add_arc(0, 1, 1, 1);
  mcf.add_arc(1, 3, 1, 0);
  mcf.add_arc(0, 2, 1, 5);
  mcf.add_arc(2, 3, 1, 0);
  const auto r1 = mcf.solve(0, 3, 1);
  EXPECT_EQ(r1.flow, 1);
  EXPECT_EQ(r1.cost, 1);
}

TEST(MinCostFlow, NegativeCostsHandled) {
  MinCostFlow mcf(3);
  mcf.add_arc(0, 1, 1, -5);
  mcf.add_arc(1, 2, 1, 2);
  const auto r = mcf.solve(0, 2);
  EXPECT_EQ(r.flow, 1);
  EXPECT_EQ(r.cost, -3);
}

TEST(MinCostFlow, SolveMinCostStopsAtProfitBoundary) {
  // One profitable path (total -3) and one unprofitable (total +2):
  // solve_min_cost must take only the first.
  MinCostFlow mcf(4);
  mcf.add_arc(0, 1, 1, -3);
  mcf.add_arc(1, 3, 1, 0);
  mcf.add_arc(0, 2, 1, 2);
  mcf.add_arc(2, 3, 1, 0);
  const auto r = mcf.solve_min_cost(0, 3);
  EXPECT_EQ(r.flow, 1);
  EXPECT_EQ(r.cost, -3);
}

TEST(MinCostFlow, FlowOnQuery) {
  MinCostFlow mcf(3);
  const int a0 = mcf.add_arc(0, 1, 3, 1);
  const int a1 = mcf.add_arc(1, 2, 2, 1);
  mcf.solve(0, 2);
  EXPECT_EQ(mcf.flow_on(a0), 2);
  EXPECT_EQ(mcf.flow_on(a1), 2);
}

TEST(ConstraintGraph, TopologicalOrderAndCycles) {
  ConstraintGraph g(3);
  g.add_constraint(0, 1, 1.0);
  g.add_constraint(1, 2, 1.0);
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_FALSE(g.has_cycle());

  ConstraintGraph cyc(2);
  cyc.add_constraint(0, 1, 1.0);
  cyc.add_constraint(1, 0, 1.0);
  EXPECT_TRUE(cyc.has_cycle());
}

TEST(ConstraintGraph, TightBounds) {
  // Chain of three unit-gap constraints inside [0, 10].
  ConstraintGraph g(3);
  for (int i = 0; i < 3; ++i) g.set_bounds(i, 0.0, 10.0);
  g.add_constraint(0, 1, 2.0);
  g.add_constraint(1, 2, 2.0);
  const auto L = g.tightest_lower_bounds();
  const auto U = g.tightest_upper_bounds();
  EXPECT_DOUBLE_EQ(L[0], 0.0);
  EXPECT_DOUBLE_EQ(L[1], 2.0);
  EXPECT_DOUBLE_EQ(L[2], 4.0);
  EXPECT_DOUBLE_EQ(U[0], 6.0);
  EXPECT_DOUBLE_EQ(U[1], 8.0);
  EXPECT_DOUBLE_EQ(U[2], 10.0);
  EXPECT_TRUE(g.feasible());
}

TEST(ConstraintGraph, InfeasibleWhenChainExceedsSpan) {
  ConstraintGraph g(3);
  for (int i = 0; i < 3; ++i) g.set_bounds(i, 0.0, 3.0);
  g.add_constraint(0, 1, 2.0);
  g.add_constraint(1, 2, 2.0);
  EXPECT_FALSE(g.feasible());
  EXPECT_FALSE(g.infeasible_nodes().empty());
}

TEST(DisplacementSolver, NoConstraintsKeepsTargets) {
  ConstraintGraph g(3);
  for (int i = 0; i < 3; ++i) g.set_bounds(i, 0.0, 10.0);
  DisplacementSolver solver;
  const auto sol = solver.solve(g, {1.0, 5.0, 9.0});
  ASSERT_TRUE(sol.feasible);
  EXPECT_DOUBLE_EQ(sol.objective, 0.0);
  EXPECT_DOUBLE_EQ(sol.position[1], 5.0);
}

TEST(DisplacementSolver, SeparatesOverlappingPair) {
  // Both want x = 5, must be 4 apart in [0, 20]: optimal cost 4
  // (e.g. 3 and 7).
  ConstraintGraph g(2);
  g.set_bounds(0, 0.0, 20.0);
  g.set_bounds(1, 0.0, 20.0);
  g.add_constraint(0, 1, 4.0);
  DisplacementSolver solver;
  const auto sol = solver.solve(g, {5.0, 5.0});
  ASSERT_TRUE(sol.feasible);
  EXPECT_GE(sol.position[1] - sol.position[0], 4.0 - 1e-9);
  EXPECT_NEAR(sol.objective, 4.0, 1e-6);
}

TEST(DisplacementSolver, WallForcesLeftShift) {
  // Target near the right wall; chain must compress leftward.
  ConstraintGraph g(2);
  g.set_bounds(0, 0.0, 10.0);
  g.set_bounds(1, 0.0, 10.0);
  g.add_constraint(0, 1, 5.0);
  DisplacementSolver solver;
  const auto sol = solver.solve(g, {9.0, 9.0});
  ASSERT_TRUE(sol.feasible);
  EXPECT_LE(sol.position[0], 5.0 + 1e-9);
  EXPECT_GE(sol.position[1] - sol.position[0], 5.0 - 1e-9);
  EXPECT_LE(sol.position[1], 10.0 + 1e-9);
  // Optimal: x1 = 10, x0 = 5 → |9-5| + |9-10| = 5.
  EXPECT_NEAR(sol.objective, 5.0, 1e-6);
}

TEST(DisplacementSolver, ChainCompression) {
  // Five nodes all targeting the center must fan out; optimum is the
  // symmetric fan with cost 2+1+0+1+2 = 6 for unit gaps.
  ConstraintGraph g(5);
  for (int i = 0; i < 5; ++i) g.set_bounds(i, 0.0, 100.0);
  for (int i = 0; i + 1 < 5; ++i) g.add_constraint(i, i + 1, 1.0);
  DisplacementSolver solver;
  const auto sol = solver.solve(g, {50, 50, 50, 50, 50});
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.objective, 6.0, 1e-6);
  for (int i = 0; i + 1 < 5; ++i) {
    EXPECT_GE(sol.position[i + 1] - sol.position[i], 1.0 - 1e-9);
  }
}

TEST(DisplacementSolver, DualBoundMatchesKnownOptima) {
  DisplacementSolver solver;
  {
    ConstraintGraph g(2);
    g.set_bounds(0, 0.0, 20.0);
    g.set_bounds(1, 0.0, 20.0);
    g.add_constraint(0, 1, 4.0);
    const double lb = solver.dual_lower_bound(g, {5.0, 5.0});
    EXPECT_NEAR(lb, 4.0, 1e-5);
  }
  {
    ConstraintGraph g(5);
    for (int i = 0; i < 5; ++i) g.set_bounds(i, 0.0, 100.0);
    for (int i = 0; i + 1 < 5; ++i) g.add_constraint(i, i + 1, 1.0);
    const double lb = solver.dual_lower_bound(g, {50, 50, 50, 50, 50});
    EXPECT_NEAR(lb, 6.0, 1e-5);
  }
}

// Randomized soundness property: the sweep solution is always feasible
// and never beats the flow dual bound; on these instances the gap also
// certifies (near-)optimality.
class DisplacementProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(DisplacementProperty, FeasibleAndDualCertified) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> pos(0.0, 30.0);
  std::uniform_int_distribution<int> nodes(2, 10);
  DisplacementSolver solver;
  for (int trial = 0; trial < 30; ++trial) {
    const int n = nodes(rng);
    ConstraintGraph g(static_cast<std::size_t>(n));
    std::vector<double> target(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      g.set_bounds(i, 0.0, 60.0);
      target[static_cast<std::size_t>(i)] = pos(rng);
    }
    // Random forward constraints (i < j keeps the graph acyclic).
    std::uniform_int_distribution<int> gap(1, 4);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if ((rng() & 3u) == 0u) g.add_constraint(i, j, gap(rng));
      }
    }
    if (!g.feasible()) continue;
    const auto sol = solver.solve(g, target);
    ASSERT_TRUE(sol.feasible);
    const double lb = solver.dual_lower_bound(g, target);
    // Soundness: a feasible primal can never beat the LP dual (small
    // slack for the dual's fixed-point cost scaling).
    EXPECT_GE(sol.objective, lb - std::max(1e-3, 1e-6 * lb));
    // Quality: the two-start sweep+clump heuristic stays within a
    // moderate factor of the exact LP optimum on adversarial random
    // DAGs (structured legalization instances are near-exact — see the
    // dedicated chain/fan/wall tests).
    EXPECT_LE(sol.objective, 1.5 * lb + 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisplacementProperty,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u));

}  // namespace
}  // namespace qgdp
