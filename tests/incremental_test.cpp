// Tests for the incremental (ECO) legalizer.
#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/pipeline.h"
#include "metrics/audit.h"
#include "metrics/clusters.h"
#include "netlist/netlist_builder.h"
#include "netlist/topologies.h"

namespace qgdp {
namespace {

struct LegalizedLayout {
  QuantumNetlist nl;
  BinGrid grid;
  double spacing;
};

LegalizedLayout make_layout(const DeviceSpec& spec) {
  QuantumNetlist nl = build_netlist(spec);
  PipelineOptions opt;
  opt.legalizer = LegalizerKind::kQgdp;
  auto out = Pipeline(opt).run(nl);
  return {std::move(nl), std::move(out.grid), out.stats.qubit.spacing_used};
}

TEST(IncrementalTest, SmallNudgeKeepsLayoutLegal) {
  auto lay = make_layout(make_grid_device());
  const Point before = lay.nl.qubit(12).pos;
  IncrementalLegalizer eco;
  const auto res = eco.move_qubit(lay.nl, lay.grid, 12, before + Point{2.0, 0.0});
  ASSERT_TRUE(res.success);
  EXPECT_GT(res.edges_touched, 0);
  AuditOptions aopt;
  aopt.qubit_min_spacing = 1.0;
  const auto audit = audit_layout(lay.nl, aopt);
  EXPECT_TRUE(audit.clean());
}

TEST(IncrementalTest, QubitLandsNearTarget) {
  auto lay = make_layout(make_grid_device());
  IncrementalLegalizer eco;
  const Point target = lay.nl.qubit(0).pos + Point{3.0, 3.0};
  const auto res = eco.move_qubit(lay.nl, lay.grid, 0, target);
  ASSERT_TRUE(res.success);
  EXPECT_LT(distance(lay.nl.qubit(0).pos, target), 4.0);
  EXPECT_EQ(lay.nl.qubit(0).pos, res.final_position);
}

TEST(IncrementalTest, GridStateMatchesPositionsAfterEco) {
  auto lay = make_layout(make_falcon27());
  IncrementalLegalizer eco;
  const auto res =
      eco.move_qubit(lay.nl, lay.grid, 7, lay.nl.qubit(7).pos + Point{-2.0, 1.0});
  ASSERT_TRUE(res.success);
  for (const auto& b : lay.nl.blocks()) {
    const BinCoord bin = lay.grid.bin_at(b.pos);
    EXPECT_EQ(lay.grid.occupant(bin), b.id);
  }
}

TEST(IncrementalTest, RippedEqualsReplaced) {
  auto lay = make_layout(make_grid_device());
  IncrementalLegalizer eco;
  const auto res = eco.move_qubit(lay.nl, lay.grid, 6, lay.nl.qubit(6).pos + Point{1.0, 2.0});
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.ripped_blocks, res.replaced_blocks);
  EXPECT_GT(res.ripped_blocks, 0);
}

TEST(IncrementalTest, TouchedResonatorsStayMostlyUnified) {
  auto lay = make_layout(make_grid_device());
  const int before = unified_edge_count(lay.nl);
  IncrementalLegalizer eco;
  const auto res = eco.move_qubit(lay.nl, lay.grid, 12, lay.nl.qubit(12).pos + Point{2, 2});
  ASSERT_TRUE(res.success);
  // Local repair must not shatter resonator integrity.
  EXPECT_GE(unified_edge_count(lay.nl), before - 2);
}

TEST(IncrementalTest, ImpossibleTargetFailsCleanly) {
  auto lay = make_layout(make_grid_device());
  const QuantumNetlist snapshot = lay.nl;
  EcoOptions opt;
  opt.search_radius = 0.0;  // no room to search: the exact spot is taken
  IncrementalLegalizer eco(opt);
  // Move onto another qubit's center with zero search radius.
  const auto res = eco.move_qubit(lay.nl, lay.grid, 0, lay.nl.qubit(12).pos);
  EXPECT_FALSE(res.success);
  // Layout untouched on failure.
  for (std::size_t q = 0; q < snapshot.qubit_count(); ++q) {
    EXPECT_EQ(snapshot.qubit(static_cast<int>(q)).pos, lay.nl.qubit(static_cast<int>(q)).pos);
  }
  for (std::size_t b = 0; b < snapshot.block_count(); ++b) {
    EXPECT_EQ(snapshot.block(static_cast<int>(b)).pos, lay.nl.block(static_cast<int>(b)).pos);
  }
}

TEST(IncrementalTest, SequenceOfMovesStaysLegal) {
  auto lay = make_layout(make_falcon27());
  IncrementalLegalizer eco;
  int successes = 0;
  for (int step = 0; step < 6; ++step) {
    const int q = (step * 5) % static_cast<int>(lay.nl.qubit_count());
    const Point delta{step % 2 == 0 ? 2.0 : -2.0, step % 3 == 0 ? 1.0 : -1.0};
    const auto res = eco.move_qubit(lay.nl, lay.grid, q, lay.nl.qubit(q).pos + delta);
    successes += res.success ? 1 : 0;
  }
  EXPECT_GT(successes, 0);
  AuditOptions aopt;
  aopt.qubit_min_spacing = 1.0;
  EXPECT_TRUE(audit_layout(lay.nl, aopt).clean());
}

}  // namespace
}  // namespace qgdp
