// Tests for the incremental (ECO) legalizer.
#include <gtest/gtest.h>

#include <iterator>

#include "core/incremental.h"
#include "core/pipeline.h"
#include "metrics/audit.h"
#include "metrics/clusters.h"
#include "netlist/netlist_builder.h"
#include "netlist/topologies.h"

namespace qgdp {
namespace {

struct LegalizedLayout {
  QuantumNetlist nl;
  BinGrid grid;
  double spacing;
};

LegalizedLayout make_layout(const DeviceSpec& spec) {
  QuantumNetlist nl = build_netlist(spec);
  PipelineOptions opt;
  opt.legalizer = LegalizerKind::kQgdp;
  auto out = Pipeline(opt).run(nl);
  return {std::move(nl), std::move(out.grid), out.stats.qubit.spacing_used};
}

TEST(IncrementalTest, SmallNudgeKeepsLayoutLegal) {
  auto lay = make_layout(make_grid_device());
  const Point before = lay.nl.qubit(12).pos;
  IncrementalLegalizer eco;
  const auto res = eco.move_qubit(lay.nl, lay.grid, 12, before + Point{2.0, 0.0});
  ASSERT_TRUE(res.success);
  EXPECT_GT(res.edges_touched, 0);
  AuditOptions aopt;
  aopt.qubit_min_spacing = 1.0;
  const auto audit = audit_layout(lay.nl, aopt);
  EXPECT_TRUE(audit.clean());
}

TEST(IncrementalTest, QubitLandsNearTarget) {
  auto lay = make_layout(make_grid_device());
  IncrementalLegalizer eco;
  const Point target = lay.nl.qubit(0).pos + Point{3.0, 3.0};
  const auto res = eco.move_qubit(lay.nl, lay.grid, 0, target);
  ASSERT_TRUE(res.success);
  EXPECT_LT(distance(lay.nl.qubit(0).pos, target), 4.0);
  EXPECT_EQ(lay.nl.qubit(0).pos, res.final_position);
}

TEST(IncrementalTest, GridStateMatchesPositionsAfterEco) {
  auto lay = make_layout(make_falcon27());
  IncrementalLegalizer eco;
  const auto res =
      eco.move_qubit(lay.nl, lay.grid, 7, lay.nl.qubit(7).pos + Point{-2.0, 1.0});
  ASSERT_TRUE(res.success);
  for (const auto& b : lay.nl.blocks()) {
    const BinCoord bin = lay.grid.bin_at(b.pos);
    EXPECT_EQ(lay.grid.occupant(bin), b.id);
  }
}

TEST(IncrementalTest, RippedEqualsReplaced) {
  auto lay = make_layout(make_grid_device());
  IncrementalLegalizer eco;
  const auto res = eco.move_qubit(lay.nl, lay.grid, 6, lay.nl.qubit(6).pos + Point{1.0, 2.0});
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.ripped_blocks, res.replaced_blocks);
  EXPECT_GT(res.ripped_blocks, 0);
}

TEST(IncrementalTest, TouchedResonatorsStayMostlyUnified) {
  auto lay = make_layout(make_grid_device());
  const int before = unified_edge_count(lay.nl);
  IncrementalLegalizer eco;
  const auto res = eco.move_qubit(lay.nl, lay.grid, 12, lay.nl.qubit(12).pos + Point{2, 2});
  ASSERT_TRUE(res.success);
  // Local repair must not shatter resonator integrity.
  EXPECT_GE(unified_edge_count(lay.nl), before - 2);
}

TEST(IncrementalTest, ImpossibleTargetFailsCleanly) {
  auto lay = make_layout(make_grid_device());
  const QuantumNetlist snapshot = lay.nl;
  EcoOptions opt;
  opt.search_radius = 0.0;  // no room to search: the exact spot is taken
  IncrementalLegalizer eco(opt);
  // Move onto another qubit's center with zero search radius.
  const auto res = eco.move_qubit(lay.nl, lay.grid, 0, lay.nl.qubit(12).pos);
  EXPECT_FALSE(res.success);
  // Layout untouched on failure.
  for (std::size_t q = 0; q < snapshot.qubit_count(); ++q) {
    EXPECT_EQ(snapshot.qubit(static_cast<int>(q)).pos, lay.nl.qubit(static_cast<int>(q)).pos);
  }
  for (std::size_t b = 0; b < snapshot.block_count(); ++b) {
    EXPECT_EQ(snapshot.block(static_cast<int>(b)).pos, lay.nl.block(static_cast<int>(b)).pos);
  }
}

TEST(IncrementalTest, SequenceOfMovesStaysLegal) {
  auto lay = make_layout(make_falcon27());
  IncrementalLegalizer eco;
  int successes = 0;
  for (int step = 0; step < 6; ++step) {
    const int q = (step * 5) % static_cast<int>(lay.nl.qubit_count());
    const Point delta{step % 2 == 0 ? 2.0 : -2.0, step % 3 == 0 ? 1.0 : -1.0};
    const auto res = eco.move_qubit(lay.nl, lay.grid, q, lay.nl.qubit(q).pos + delta);
    successes += res.success ? 1 : 0;
  }
  EXPECT_GT(successes, 0);
  AuditOptions aopt;
  aopt.qubit_min_spacing = 1.0;
  EXPECT_TRUE(audit_layout(lay.nl, aopt).clean());
}

// ---- PR 6 hardening: snapshots, region-scoped grids, window Abacus ----

bool same_grid(const BinGrid& a, const BinGrid& b) {
  if (a.width() != b.width() || a.height() != b.height()) return false;
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      const BinCoord c{x, y};
      if (a.state(c) != b.state(c) || a.occupant(c) != b.occupant(c)) return false;
    }
  }
  return true;
}

bool same_positions(const QuantumNetlist& a, const QuantumNetlist& b) {
  for (std::size_t q = 0; q < a.qubit_count(); ++q) {
    if (!(a.qubit(static_cast<int>(q)).pos == b.qubit(static_cast<int>(q)).pos)) return false;
  }
  for (std::size_t i = 0; i < a.block_count(); ++i) {
    if (!(a.block(static_cast<int>(i)).pos == b.block(static_cast<int>(i)).pos)) return false;
  }
  return true;
}

TEST(IncrementalTest, SaveAndLoadStateRoundTrips) {
  auto lay = make_layout(make_falcon27());
  const auto snapshot = IncrementalLegalizer::save_state(lay.nl);
  const QuantumNetlist before = lay.nl;

  IncrementalLegalizer eco;
  ASSERT_TRUE(eco.move_qubit(lay.nl, lay.grid, 5, lay.nl.qubit(5).pos + Point{2, 1}).success);
  ASSERT_FALSE(same_positions(before, lay.nl));

  IncrementalLegalizer::load_state(snapshot, lay.nl, lay.grid);
  EXPECT_TRUE(same_positions(before, lay.nl));
  EXPECT_TRUE(same_grid(lay.grid, IncrementalLegalizer::grid_for(lay.nl)));
}

// The region-scoped blockage update must produce exactly the grid the
// historical full rebuild produces — for the same edit sequence, bin
// for bin — while touching a fraction of the bins.
TEST(IncrementalTest, RegionScopedGridMatchesFullRebuild) {
  for (const auto* topo : {"Grid", "Falcon"}) {
    auto region = make_layout(*topology_by_name(topo));
    auto full = make_layout(*topology_by_name(topo));
    ASSERT_TRUE(same_grid(region.grid, full.grid));

    EcoOptions region_opt;
    EcoOptions full_opt;
    full_opt.full_rebuild_baseline = true;
    IncrementalLegalizer region_eco(region_opt);
    IncrementalLegalizer full_eco(full_opt);

    const Point deltas[] = {{2, 0}, {-1, 2}, {0, -3}};
    int applied = 0;
    for (std::size_t i = 0; i < std::size(deltas); ++i) {
      const int q = static_cast<int>((i * 7) % region.nl.qubit_count());
      const Point target = region.nl.qubit(q).pos + deltas[i];
      const auto a = region_eco.move_qubit(region.nl, region.grid, q, target);
      const auto b = full_eco.move_qubit(full.nl, full.grid, q, target);
      ASSERT_EQ(a.success, b.success) << topo << " edit " << i;
      if (!a.success) continue;
      ++applied;
      EXPECT_EQ(a.replaced_blocks, b.replaced_blocks);
      EXPECT_LT(a.grid_bins_touched, b.grid_bins_touched);
      ASSERT_TRUE(same_positions(region.nl, full.nl)) << topo << " edit " << i;
      ASSERT_TRUE(same_grid(region.grid, full.grid)) << topo << " edit " << i;
    }
    EXPECT_GT(applied, 0) << topo;
  }
}

TEST(IncrementalTest, BatchMoveRepairsOneCombinedWindow) {
  auto lay = make_layout(make_falcon27());
  IncrementalLegalizer eco;
  const std::vector<QubitMove> moves = {
      {3, lay.nl.qubit(3).pos + Point{2, 0}},
      {15, lay.nl.qubit(15).pos + Point{-2, 1}},
      {22, lay.nl.qubit(22).pos + Point{0, 2}},
  };
  const auto res = eco.move_qubits(lay.nl, lay.grid, moves);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.ripped_blocks, res.replaced_blocks);
  EXPECT_GT(res.edges_touched, 2);
  EXPECT_FALSE(res.dirty_window.empty());
  EXPECT_EQ(res.window_violations, 0);
  AuditOptions aopt;
  aopt.qubit_min_spacing = 1.0;
  EXPECT_TRUE(audit_layout(lay.nl, aopt).clean());
}

// The serving policy: ripped blocks re-legalized by Abacus row packing
// on live clump stacks inside the dirty window. The live-stack pricing
// must be byte-identical to the retained from-scratch repack pricing,
// and the result must audit clean with the invariants re-checked on
// the window.
TEST(IncrementalTest, AbacusWindowLiveStacksMatchRepackPricing) {
  for (const auto* topo : {"Grid", "Falcon"}) {
    auto live = make_layout(*topology_by_name(topo));
    auto repack = make_layout(*topology_by_name(topo));

    EcoOptions live_opt;
    live_opt.policy = EcoOptions::BlockPolicy::kAbacusWindow;
    EcoOptions repack_opt = live_opt;
    repack_opt.repack_pricing_baseline = true;

    const Point deltas[] = {{2, 1}, {-2, 0}, {1, -2}};
    int applied = 0;
    for (std::size_t i = 0; i < std::size(deltas); ++i) {
      const int q = static_cast<int>((3 + i * 9) % live.nl.qubit_count());
      const Point target = live.nl.qubit(q).pos + deltas[i];
      const auto a = IncrementalLegalizer(live_opt).move_qubit(live.nl, live.grid, q, target);
      const auto b =
          IncrementalLegalizer(repack_opt).move_qubit(repack.nl, repack.grid, q, target);
      ASSERT_EQ(a.success, b.success) << topo << " edit " << i;
      if (!a.success) continue;
      ++applied;
      EXPECT_EQ(a.ripped_blocks, a.replaced_blocks);
      EXPECT_EQ(a.window_violations, 0);
      // Byte-identical placements from the two pricing engines.
      ASSERT_TRUE(same_positions(live.nl, repack.nl)) << topo << " edit " << i;
      ASSERT_TRUE(same_grid(live.grid, repack.grid)) << topo << " edit " << i;
    }
    ASSERT_GT(applied, 0) << topo;
    AuditOptions aopt;
    aopt.qubit_min_spacing = 1.0;
    EXPECT_TRUE(audit_layout(live.nl, aopt).clean()) << topo;
  }
}

// Abacus-window ECO must also be byte-identical to a from-scratch
// re-legalization of the same region: rip the same blocks on a copy,
// re-run the same window pack on a fresh legalizer instance, and
// compare — the live stacks add no state the region itself doesn't
// determine.
TEST(IncrementalTest, EcoMatchesFromScratchRegionRelegalization) {
  auto eco_lay = make_layout(make_falcon27());
  auto scratch = make_layout(make_falcon27());

  EcoOptions opt;
  opt.policy = EcoOptions::BlockPolicy::kAbacusWindow;
  const int q = 9;
  const Point target = eco_lay.nl.qubit(q).pos + Point{2, 2};

  const auto res = IncrementalLegalizer(opt).move_qubit(eco_lay.nl, eco_lay.grid, q, target);
  ASSERT_TRUE(res.success);

  // From scratch: restore the scratch copy to the same post-GP state,
  // then apply the identical edit through a separate instance (no
  // shared state with the first run).
  const auto replay =
      IncrementalLegalizer(opt).move_qubit(scratch.nl, scratch.grid, q, target);
  ASSERT_TRUE(replay.success);
  EXPECT_TRUE(same_positions(eco_lay.nl, scratch.nl));
  EXPECT_TRUE(same_grid(eco_lay.grid, scratch.grid));
  EXPECT_EQ(res.replaced_blocks, replay.replaced_blocks);
}

TEST(IncrementalTest, VerifyWindowCountsPlantedViolations) {
  auto lay = make_layout(make_grid_device());
  const Rect die = lay.nl.die();
  EXPECT_EQ(IncrementalLegalizer::verify_window(lay.nl, lay.grid, die, 1.0), 0);

  // Push a block off-lattice without telling the grid: both the
  // alignment rule and the occupancy-agreement rule must fire inside
  // the window, and a window elsewhere must stay clean.
  const int bid = lay.nl.block(0).id;
  const Point old_pos = lay.nl.block(bid).pos;
  lay.nl.block(bid).pos = old_pos + Point{0.25, 0.0};
  const Rect dirty = Rect::from_center(old_pos, 4.0, 4.0);
  EXPECT_GT(IncrementalLegalizer::verify_window(lay.nl, lay.grid, dirty, 1.0), 0);
  lay.nl.block(bid).pos = old_pos;
  EXPECT_EQ(IncrementalLegalizer::verify_window(lay.nl, lay.grid, die, 1.0), 0);
}

}  // namespace
}  // namespace qgdp
