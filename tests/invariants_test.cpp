// Property-based legality suite: every flow must produce an invariant-
// clean layout on every topology, for every GP seed — the randomized
// matrix that hardens the legalizers against inputs the paper set
// never exercised (kilo-qubit families included via scaled-down
// instances so the suite stays fast).
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "netlist/netlist_builder.h"
#include "netlist/topologies.h"
#include "support/invariants.h"

namespace qgdp {
namespace {

using test_support::InvariantOptions;
using test_support::check_legality_invariants;

struct MatrixCase {
  std::string topology;
  unsigned seed;
};

/// Old (paper) and new (parameterized family) topologies. The family
/// instances are sized to keep the full matrix under test-suite
/// budgets while still exceeding the paper's largest device.
const std::vector<std::string> kTopologies = {
    "Grid", "Xtree", "Falcon", "Aspen-11", "grid-10x10", "heavyhex-7x12", "hex-9x12",
    "octagon-2x3",
};
const std::vector<unsigned> kSeeds = {1u, 7u, 42u};

class InvariantMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(InvariantMatrix, AllFlowsLegalFromSharedGp) {
  const auto& param = GetParam();
  const auto spec = topology_by_name(param.topology);
  ASSERT_TRUE(spec.has_value()) << param.topology;

  QuantumNetlist gp_nl = build_netlist(*spec);
  GlobalPlacerOptions gp_opt;
  gp_opt.seed = param.seed;
  GlobalPlacer(gp_opt).place(gp_nl);

  for (const LegalizerKind kind : all_legalizer_kinds()) {
    QuantumNetlist nl = gp_nl;
    PipelineOptions opt;
    opt.run_gp = false;
    opt.legalizer = kind;
    const auto out = Pipeline(opt).run(nl);

    InvariantOptions iopt;
    iopt.qubit_min_spacing = quantum_flow(kind) ? out.stats.qubit.spacing_used : 0.0;
    const auto failures = check_legality_invariants(nl, iopt);
    EXPECT_TRUE(failures.empty())
        << param.topology << " seed " << param.seed << " flow " << legalizer_name(kind)
        << ": " << failures.size() << " violation(s), first: " << failures.front();
  }
}

std::vector<MatrixCase> matrix_cases() {
  std::vector<MatrixCase> cases;
  for (const auto& t : kTopologies) {
    for (const unsigned s : kSeeds) cases.push_back({t, s});
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  std::string name = info.param.topology + "_seed" + std::to_string(info.param.seed);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(FlowsTopologiesSeeds, InvariantMatrix,
                         ::testing::ValuesIn(matrix_cases()), case_name);

// The detailed-placement stage must preserve every invariant the
// legalizer established (it only swaps/slides within legal sites).
TEST(InvariantMatrix, DetailedPlacementPreservesLegality) {
  for (const unsigned seed : kSeeds) {
    const auto spec = topology_by_name("heavyhex-7x12");
    ASSERT_TRUE(spec.has_value());
    QuantumNetlist nl = build_netlist(*spec);
    PipelineOptions opt;
    opt.legalizer = LegalizerKind::kQgdp;
    opt.run_detailed = true;
    opt.gp.seed = seed;
    const auto out = Pipeline(opt).run(nl);

    InvariantOptions iopt;
    iopt.qubit_min_spacing = out.stats.qubit.spacing_used;
    const auto failures = check_legality_invariants(nl, iopt);
    EXPECT_TRUE(failures.empty()) << "seed " << seed << ": " << failures.size()
                                  << " violation(s), first: " << failures.front();
  }
}

}  // namespace
}  // namespace qgdp
