// Tests for the table printer and SVG layout writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/svg_writer.h"
#include "io/table.h"
#include "netlist/netlist_builder.h"
#include "netlist/topologies.h"

namespace qgdp {
namespace {

TEST(TableTest, AlignedOutput) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  // All lines equal width for the header/value columns (padded).
  std::istringstream is(s);
  std::string line;
  std::getline(is, line);
  const auto value_col = line.find("value");
  std::getline(is, line);  // separator
  std::getline(is, line);
  EXPECT_EQ(line.find('1'), value_col);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(TableTest, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(SvgWriter, ContainsComponents) {
  const auto nl = build_netlist(make_grid_device());
  const std::string svg = layout_svg_string(nl);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One rect per component plus the die outline.
  std::size_t rects = 0;
  for (std::size_t pos = 0; (pos = svg.find("<rect", pos)) != std::string::npos; ++pos) ++rects;
  EXPECT_EQ(rects, 1 + nl.qubit_count() + nl.block_count());
  // Qubit labels rendered.
  EXPECT_NE(svg.find("<text"), std::string::npos);
}

TEST(SvgWriter, OptionsToggleLayers) {
  const auto nl = build_netlist(make_grid_device());
  SvgOptions opt;
  opt.label_qubits = false;
  const std::string svg = layout_svg_string(nl, opt);
  EXPECT_EQ(svg.find("<text"), std::string::npos);
}

TEST(SvgWriter, WritesFile) {
  const auto nl = build_netlist(make_falcon27());
  const std::string path = "/tmp/qgdp_io_test_layout.svg";
  write_layout_svg(nl, path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_NE(buf.str().find("</svg>"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SvgWriter, ThrowsOnBadPath) {
  const auto nl = build_netlist(make_grid_device());
  EXPECT_THROW(write_layout_svg(nl, "/nonexistent_dir/foo.svg"), std::runtime_error);
}

}  // namespace
}  // namespace qgdp
