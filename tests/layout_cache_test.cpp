// Layout-cache tests: content-addressed key derivation (every key
// component must perturb the hash), LRU bookkeeping and eviction,
// byte-identical round trips through the serialized payloads, and
// thread safety of concurrent get/put through the shared ThreadPool.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "io/serialization.h"
#include "netlist/netlist_builder.h"
#include "netlist/topologies.h"
#include "runtime/thread_pool.h"
#include "server/layout_cache.h"
#include "server/protocol.h"

namespace qgdp {
namespace {

using server::LayoutCache;
using server::layout_cache_key;

// ---- key derivation --------------------------------------------------

TEST(LayoutCacheKey, StableForIdenticalInputs) {
  const DeviceSpec spec = make_grid_device();
  EXPECT_EQ(layout_cache_key(spec, "qgdp", 1, "dp=0;gp_levels=0"),
            layout_cache_key(spec, "qgdp", 1, "dp=0;gp_levels=0"));
  EXPECT_EQ(layout_cache_key(spec, "qgdp", 1, "dp=0;gp_levels=0").size(), 16u);
}

TEST(LayoutCacheKey, EveryComponentPerturbsTheKey) {
  const DeviceSpec spec = make_grid_device();
  const std::string base = layout_cache_key(spec, "qgdp", 1, "dp=0;gp_levels=0");
  // options hash
  EXPECT_NE(base, layout_cache_key(spec, "qgdp", 1, "dp=1;gp_levels=0"));
  EXPECT_NE(base, layout_cache_key(spec, "qgdp", 1, "dp=0;gp_levels=2"));
  // flow and seed
  EXPECT_NE(base, layout_cache_key(spec, "q-abacus", 1, "dp=0;gp_levels=0"));
  EXPECT_NE(base, layout_cache_key(spec, "qgdp", 2, "dp=0;gp_levels=0"));
  // device content: one extra coupling changes the serialized spec
  DeviceSpec bigger = spec;
  bigger.couplings.emplace_back(0, 7);
  EXPECT_NE(base, layout_cache_key(bigger, "qgdp", 1, "dp=0;gp_levels=0"));
}

// ---- LRU store -------------------------------------------------------

TEST(LayoutCache, MissThenHitWithCounters) {
  LayoutCache cache(4);
  EXPECT_FALSE(cache.get("k1").has_value());
  cache.put("k1", "payload-1");
  const auto hit = cache.get("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload-1");
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, std::string("payload-1").size());
}

TEST(LayoutCache, EvictsLeastRecentlyUsed) {
  LayoutCache cache(2);
  cache.put("a", "A");
  cache.put("b", "B");
  ASSERT_TRUE(cache.get("a").has_value());  // refresh a: b is now LRU
  cache.put("c", "C");
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
  const auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.bytes, 2u);
}

TEST(LayoutCache, PutOfExistingKeyReplacesAndRefreshes) {
  LayoutCache cache(2);
  cache.put("a", "old");
  cache.put("b", "B");
  cache.put("a", "new");  // refresh: b becomes LRU
  cache.put("c", "C");
  EXPECT_FALSE(cache.contains("b"));
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "new");
  EXPECT_EQ(cache.stats().bytes, std::string("new").size() + 1);
}

// ---- serialization round trip ---------------------------------------

TEST(LayoutCache, CachedLayoutRoundTripsByteIdentically) {
  const DeviceSpec spec = make_grid_device();
  QuantumNetlist nl = build_netlist(spec);
  Pipeline pipeline;
  (void)pipeline.run(nl);

  std::ostringstream first;
  write_layout(nl, first);
  LayoutCache cache(4);
  cache.put("layout", first.str());

  const auto cached = cache.get("layout");
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, first.str());

  // Deserialize the cached bytes and re-serialize: the text must be
  // byte-identical, so a cache hit reproduces the cold run exactly.
  std::istringstream is(*cached);
  const QuantumNetlist reread = read_layout(is);
  std::ostringstream second;
  write_layout(reread, second);
  EXPECT_EQ(second.str(), first.str());
  EXPECT_EQ(server::fnv1a64(second.str()), server::fnv1a64(first.str()));
}

// ---- concurrency -----------------------------------------------------

TEST(LayoutCache, ConcurrentGetPutUnderThreadPool) {
  LayoutCache cache(64);  // no eviction: every key stays resident
  constexpr std::size_t kKeys = 8;
  constexpr std::size_t kOps = 512;
  std::atomic<std::size_t> wrong{0};
  parallel_for(ThreadPool::shared(), 0, kOps, 8, [&](std::size_t i) {
    const std::string key = "key-" + std::to_string(i % kKeys);
    const std::string payload = "payload-" + std::to_string(i % kKeys);
    if (i % 3 == 0) {
      cache.put(key, payload);
    } else if (const auto hit = cache.get(key)) {
      if (*hit != payload) wrong.fetch_add(1);
    }
  });
  EXPECT_EQ(wrong.load(), 0u);
  const auto s = cache.stats();
  EXPECT_LE(s.entries, kKeys);
  EXPECT_EQ(s.evictions, 0u);
  // Every non-put op counted as exactly one hit or one miss.
  EXPECT_EQ(s.hits + s.misses, kOps - (kOps + 2) / 3);
}

}  // namespace
}  // namespace qgdp
