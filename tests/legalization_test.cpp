// Tests for the bin grid, the Tetris/Abacus baselines, and the shared
// constraint-graph macro legalizer.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "legalization/abacus_legalizer.h"
#include "legalization/bin_grid.h"
#include "legalization/macro_legalizer.h"
#include "legalization/tetris_legalizer.h"
#include "netlist/netlist_builder.h"
#include "netlist/topologies.h"
#include "placement/global_placer.h"

namespace qgdp {
namespace {

TEST(BinGrid, Construction) {
  BinGrid g(Rect{0, 0, 10, 8});
  EXPECT_EQ(g.width(), 10);
  EXPECT_EQ(g.height(), 8);
  EXPECT_EQ(g.free_count(), 80u);
  EXPECT_TRUE(g.is_free({0, 0}));
  EXPECT_FALSE(g.is_free({10, 0}));  // out of bounds
}

TEST(BinGrid, BlockRectMarksCoveredBins) {
  BinGrid g(Rect{0, 0, 10, 10});
  g.block_rect(Rect{2, 2, 5, 5});  // 3×3 region
  EXPECT_EQ(g.free_count(), 100u - 9u);
  EXPECT_FALSE(g.is_free({2, 2}));
  EXPECT_FALSE(g.is_free({4, 4}));
  EXPECT_TRUE(g.is_free({5, 5}));  // touching corner bin stays free
  EXPECT_TRUE(g.is_free({1, 2}));
}

TEST(BinGrid, OccupyAndRelease) {
  BinGrid g(Rect{0, 0, 4, 4});
  EXPECT_TRUE(g.occupy({1, 1}, 42));
  EXPECT_FALSE(g.occupy({1, 1}, 43));  // already taken
  EXPECT_EQ(g.occupant({1, 1}), 42);
  EXPECT_EQ(g.state({1, 1}), BinGrid::State::kOccupied);
  g.release({1, 1});
  EXPECT_TRUE(g.is_free({1, 1}));
  EXPECT_EQ(g.occupant({1, 1}), -1);
  EXPECT_THROW(g.release({1, 1}), std::logic_error);
}

TEST(BinGrid, NearestFreeExactCenter) {
  BinGrid g(Rect{0, 0, 9, 9});
  const auto b = g.nearest_free(Point{4.5, 4.5});
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, (BinCoord{4, 4}));
}

TEST(BinGrid, NearestFreeSkipsOccupied) {
  BinGrid g(Rect{0, 0, 9, 9});
  g.occupy({4, 4}, 0);
  const auto b = g.nearest_free(Point{4.5, 4.5});
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(*b, (BinCoord{4, 4}));
  EXPECT_NEAR(distance(g.center_of(*b), Point{4.5, 4.5}), 1.0, 1e-9);
}

TEST(BinGrid, NearestFreeInWindowRespectsRegion) {
  BinGrid g(Rect{0, 0, 20, 20});
  const Rect window{10, 10, 15, 15};
  const auto b = g.nearest_free_in(Point{0.5, 0.5}, window);
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(window.contains(g.center_of(*b)));
}

TEST(BinGrid, FreeNeighbors) {
  BinGrid g(Rect{0, 0, 5, 5});
  g.occupy({2, 3}, 0);
  const auto nbrs = g.free_neighbors({2, 2});
  EXPECT_EQ(nbrs.size(), 3u);  // up is occupied
  const auto corner = g.free_neighbors({0, 0});
  EXPECT_EQ(corner.size(), 2u);
}

// Property: the hierarchical nearest-free query must agree with the
// exhaustive linear scan (distance ties may pick different bins).
class BinGridProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(BinGridProperty, NearestFreeMatchesLinearScan) {
  std::mt19937 rng(GetParam());
  BinGrid g(Rect{0, 0, 24, 18});
  std::uniform_int_distribution<int> px(0, 23);
  std::uniform_int_distribution<int> py(0, 17);
  // Random occupancy pattern ~60%.
  for (int k = 0; k < 350; ++k) {
    const BinCoord b{px(rng), py(rng)};
    if (g.is_free(b)) g.occupy(b, k);
  }
  std::uniform_real_distribution<double> qx(-2.0, 26.0);
  std::uniform_real_distribution<double> qy(-2.0, 20.0);
  for (int q = 0; q < 200; ++q) {
    const Point target{qx(rng), qy(rng)};
    const auto fast = g.nearest_free(target);
    const auto slow = g.nearest_free_linear_scan(target);
    ASSERT_EQ(fast.has_value(), slow.has_value());
    if (fast) {
      EXPECT_NEAR(distance(g.center_of(*fast), target), distance(g.center_of(*slow), target),
                  1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinGridProperty, ::testing::Values(3u, 14u, 159u, 2653u));

TEST(BinGrid, NearestFreeNoneWhenFull) {
  BinGrid g(Rect{0, 0, 2, 2});
  int id = 0;
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 2; ++x) g.occupy({x, y}, id++);
  }
  EXPECT_FALSE(g.nearest_free(Point{1, 1}).has_value());
  EXPECT_EQ(g.free_count(), 0u);
}

// Shared fixture: a globally placed Falcon netlist with legal qubits.
class BlockLegalizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nl_ = build_netlist(make_falcon27());
    GlobalPlacer gp;
    gp.place(nl_);
    MacroLegalizer::quantum().legalize(nl_);
    ASSERT_TRUE(qubits_legal(nl_));
  }

  BinGrid make_grid() {
    BinGrid grid(nl_.die());
    for (const auto& q : nl_.qubits()) grid.block_rect(q.rect());
    return grid;
  }

  void expect_blocks_legal(const BinGrid& grid) {
    std::set<std::pair<int, int>> taken;
    for (const auto& b : nl_.blocks()) {
      EXPECT_TRUE(nl_.die().inflated(1e-6).contains(b.rect())) << "block " << b.id;
      const BinCoord bin = grid.bin_at(b.pos);
      EXPECT_EQ(grid.occupant(bin), b.id) << "grid/position mismatch for block " << b.id;
      EXPECT_TRUE(taken.insert({bin.ix, bin.iy}).second)
          << "two blocks share bin " << bin.ix << "," << bin.iy;
      // Never on top of a qubit.
      for (const auto& q : nl_.qubits()) {
        EXPECT_FALSE(q.rect().overlaps(b.rect())) << "block " << b.id << " on qubit " << q.id;
      }
    }
  }

  QuantumNetlist nl_;
};

TEST_F(BlockLegalizerTest, TetrisPlacesAllBlocksLegally) {
  BinGrid grid = make_grid();
  const auto res = TetrisLegalizer{}.legalize(nl_, grid);
  EXPECT_TRUE(res.success);
  EXPECT_EQ(res.placed, static_cast<int>(nl_.block_count()));
  expect_blocks_legal(grid);
}

TEST_F(BlockLegalizerTest, AbacusPlacesAllBlocksLegally) {
  BinGrid grid = make_grid();
  const auto res = AbacusLegalizer{}.legalize(nl_, grid);
  EXPECT_TRUE(res.success);
  EXPECT_EQ(res.placed, static_cast<int>(nl_.block_count()));
  expect_blocks_legal(grid);
}

TEST_F(BlockLegalizerTest, AbacusDisplacementNotWorseThanTetrisByFar) {
  // Abacus optimizes quadratic displacement per row; it should be in
  // the same ballpark as Tetris (typically better on average).
  BinGrid g1 = make_grid();
  BinGrid g2 = make_grid();
  auto nl2 = nl_;
  const auto tetris = TetrisLegalizer{}.legalize(nl_, g1);
  const auto abacus = AbacusLegalizer{}.legalize(nl2, g2);
  EXPECT_LT(abacus.total_displacement, tetris.total_displacement * 2.5);
}

TEST(MacroLegalizer, ClassicRemovesOverlaps) {
  // Eight 3×3 macros crushed around one point in a 37×37 die must come
  // out overlap-free with modest displacement.
  QuantumNetlist nl;
  for (int i = 0; i < 8; ++i) {
    nl.add_qubit({18.0 + 0.1 * i, 18.0 + 0.05 * (i % 3)}, 3, 3, 5.0);
  }
  nl.set_die(Rect{0, 0, 37, 37});
  const auto res = MacroLegalizer::classic().legalize(nl);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(qubits_legal(nl, 0.0));
}

TEST(MacroLegalizer, QuantumEnforcesMinimumSpacing) {
  QuantumNetlist nl = build_netlist(make_grid_device());
  GlobalPlacer gp;
  gp.place(nl);
  const auto res = MacroLegalizer::quantum().legalize(nl);
  ASSERT_TRUE(res.success);
  // §III-C: at least one standard-cell spacing between qubits.
  EXPECT_TRUE(qubits_legal(nl, res.spacing_used - 1e-9));
  EXPECT_GE(res.spacing_used, 1.0);
}

TEST(MacroLegalizer, QuantumStartsStringent) {
  // With plenty of room the stringent start spacing (2 cells) holds.
  QuantumNetlist nl = build_netlist(make_grid_device());
  GlobalPlacer gp;
  gp.place(nl);
  const auto res = MacroLegalizer::quantum().legalize(nl);
  ASSERT_TRUE(res.success);
  EXPECT_DOUBLE_EQ(res.spacing_used, 2.0);
  EXPECT_EQ(res.relaxations, 0);
}

TEST(MacroLegalizer, RelaxesWhenDieIsTight) {
  // 4 qubits of 3×3 in a 9×9 die: spacing 2 needs (3+2)*2-2=8 per axis
  // → feasible only at the wall; spacing relaxation may kick in, and
  // the hard floor of 1 cell must still hold.
  QuantumNetlist nl;
  nl.add_qubit({2.0, 2.0}, 3, 3, 5.0);
  nl.add_qubit({5.0, 2.5}, 3, 3, 5.07);
  nl.add_qubit({2.5, 5.0}, 3, 3, 5.14);
  nl.add_qubit({5.0, 5.0}, 3, 3, 5.0);
  nl.set_die(Rect{0, 0, 9, 9});
  const auto res = MacroLegalizer::quantum().legalize(nl);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(qubits_legal(nl, 1.0 - 1e-9));
}

TEST(MacroLegalizer, SmallDisplacementWhenAlreadyLegal) {
  QuantumNetlist nl;
  nl.add_qubit({3.5, 3.5}, 3, 3, 5.0);
  nl.add_qubit({10.5, 3.5}, 3, 3, 5.07);
  nl.set_die(Rect{0, 0, 20, 20});
  const auto res = MacroLegalizer::quantum().legalize(nl);
  ASSERT_TRUE(res.success);
  EXPECT_NEAR(res.total_displacement, 0.0, 1e-9);
}

// Property: random dense qubit clouds are always legalized to a legal
// layout (possibly via the relaxation path).
class MacroLegalizerProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(MacroLegalizerProperty, AlwaysLegalOnRandomClouds) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> coord(2.0, 28.0);
  QuantumNetlist nl;
  for (int i = 0; i < 12; ++i) {
    nl.add_qubit({coord(rng), coord(rng)}, 3, 3, 5.0 + 0.07 * (i % 3));
  }
  nl.set_die(Rect{0, 0, 30, 30});
  const auto res = MacroLegalizer::quantum().legalize(nl);
  ASSERT_TRUE(res.success) << "seed " << GetParam();
  EXPECT_TRUE(qubits_legal(nl, 1.0 - 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MacroLegalizerProperty,
                         ::testing::Values(1u, 7u, 42u, 99u, 1234u, 9999u));

}  // namespace
}  // namespace qgdp
