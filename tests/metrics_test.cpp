// Tests for cluster analysis, the crossing model, and hotspot metrics.
#include <gtest/gtest.h>

#include "metrics/clusters.h"
#include "metrics/crossings.h"
#include "metrics/hotspots.h"

namespace qgdp {
namespace {

/// Two qubits at y=5 with one 4-block resonator; block positions are
/// set directly by each test.
QuantumNetlist make_fixture(int blocks_per_edge = 4, int edges = 1) {
  QuantumNetlist nl;
  nl.add_qubit({3.5, 5.5}, 3, 3, 5.00);
  nl.add_qubit({16.5, 5.5}, 3, 3, 5.07);
  if (edges > 1) {
    nl.add_qubit({3.5, 14.5}, 3, 3, 5.14);
    nl.add_qubit({16.5, 14.5}, 3, 3, 5.00);
  }
  nl.add_edge(0, 1, 6.50, static_cast<double>(blocks_per_edge));
  if (edges > 1) nl.add_edge(2, 3, 6.52, static_cast<double>(blocks_per_edge));
  nl.partition_all_edges();
  nl.set_die(Rect{0, 0, 20, 20});
  return nl;
}

void lay_blocks(QuantumNetlist& nl, int edge, std::vector<Point> at) {
  const auto& e = nl.edge(edge);
  ASSERT_EQ(at.size(), e.blocks.size());
  for (std::size_t i = 0; i < at.size(); ++i) nl.block(e.blocks[i]).pos = at[i];
}

TEST(Clusters, ContiguousRowIsOneCluster) {
  auto nl = make_fixture();
  lay_blocks(nl, 0, {{6.5, 5.5}, {7.5, 5.5}, {8.5, 5.5}, {9.5, 5.5}});
  EXPECT_EQ(edge_cluster_count(nl, 0), 1);
  EXPECT_EQ(unified_edge_count(nl), 1);
  EXPECT_EQ(total_cluster_count(nl), 1);
}

TEST(Clusters, GapSplitsCluster) {
  auto nl = make_fixture();
  lay_blocks(nl, 0, {{6.5, 5.5}, {7.5, 5.5}, {10.5, 5.5}, {11.5, 5.5}});
  EXPECT_EQ(edge_cluster_count(nl, 0), 2);
  EXPECT_EQ(unified_edge_count(nl), 0);
}

TEST(Clusters, DiagonalDoesNotTouch) {
  auto nl = make_fixture();
  lay_blocks(nl, 0, {{6.5, 5.5}, {7.5, 6.5}, {8.5, 7.5}, {9.5, 8.5}});
  EXPECT_EQ(edge_cluster_count(nl, 0), 4);
}

TEST(Clusters, LShapeIsOneCluster) {
  auto nl = make_fixture();
  lay_blocks(nl, 0, {{6.5, 5.5}, {7.5, 5.5}, {7.5, 6.5}, {7.5, 7.5}});
  EXPECT_EQ(edge_cluster_count(nl, 0), 1);
}

TEST(Clusters, CentroidsPerCluster) {
  auto nl = make_fixture();
  lay_blocks(nl, 0, {{6.5, 5.5}, {7.5, 5.5}, {12.5, 5.5}, {13.5, 5.5}});
  const auto cents = edge_cluster_centroids(nl, 0);
  ASSERT_EQ(cents.size(), 2u);
  EXPECT_NEAR(cents[0].x + cents[1].x, 7.0 + 13.0, 1e-9);
}

TEST(Crossings, UnifiedEdgeHasNoSegmentsOrCrossings) {
  auto nl = make_fixture();
  lay_blocks(nl, 0, {{6.5, 5.5}, {7.5, 5.5}, {8.5, 5.5}, {9.5, 5.5}});
  EXPECT_TRUE(edge_virtual_segments(nl, 0).empty());
  EXPECT_EQ(compute_crossings(nl).total, 0);
}

TEST(Crossings, StitchingThroughForeignBlocksCounts) {
  auto nl = make_fixture(4, 2);
  // Edge 0 split into two clusters left/right of a vertical run of
  // edge 1's blocks: the stitch crosses the foreign region once.
  lay_blocks(nl, 0, {{6.5, 5.5}, {7.5, 5.5}, {12.5, 5.5}, {13.5, 5.5}});
  lay_blocks(nl, 1, {{10.5, 4.5}, {10.5, 5.5}, {10.5, 6.5}, {10.5, 7.5}});
  const auto rep = compute_crossings(nl);
  EXPECT_EQ(rep.total, 1);
  ASSERT_EQ(rep.points.size(), 1u);
  EXPECT_EQ(rep.points[0].edge_a, 0);
  EXPECT_EQ(rep.points[0].edge_b, 1);
  EXPECT_NEAR(rep.points[0].where.x, 10.5, 0.75);
}

TEST(Crossings, TwoSplitEdgesStitchesCross) {
  auto nl = make_fixture(4, 2);
  // Both edges split; their stitching segments form an X.
  lay_blocks(nl, 0, {{6.5, 4.5}, {7.5, 4.5}, {12.5, 8.5}, {13.5, 8.5}});
  lay_blocks(nl, 1, {{6.5, 8.5}, {7.5, 8.5}, {12.5, 4.5}, {13.5, 4.5}});
  const auto rep = compute_crossings(nl);
  EXPECT_GE(rep.total, 1);  // at least the wire-wire crossing
  bool has_wire_cross = false;
  for (const auto& p : rep.points) {
    if (p.edge_a != p.edge_b) has_wire_cross = true;
  }
  EXPECT_TRUE(has_wire_cross);
}

TEST(Crossings, ActiveSubsetFiltersEdges) {
  auto nl = make_fixture(4, 2);
  lay_blocks(nl, 0, {{6.5, 5.5}, {7.5, 5.5}, {12.5, 5.5}, {13.5, 5.5}});
  lay_blocks(nl, 1, {{10.5, 4.5}, {10.5, 5.5}, {10.5, 6.5}, {10.5, 7.5}});
  EXPECT_EQ(compute_crossings_among(nl, {0}).total, 0);  // edge 1 inactive
  EXPECT_EQ(compute_crossings_among(nl, {0, 1}).total, 1);
}

TEST(Hotspots, NoPairsWhenWellSeparatedOrDetuned) {
  auto nl = make_fixture(4, 2);
  // Far apart: no proximity.
  lay_blocks(nl, 0, {{6.5, 2.5}, {7.5, 2.5}, {8.5, 2.5}, {9.5, 2.5}});
  lay_blocks(nl, 1, {{6.5, 17.5}, {7.5, 17.5}, {8.5, 17.5}, {9.5, 17.5}});
  const auto rep = compute_hotspots(nl);
  EXPECT_EQ(rep.pairs.size(), 0u);
  EXPECT_DOUBLE_EQ(rep.ph, 0.0);
  EXPECT_EQ(rep.hq, 0);
}

TEST(Hotspots, FrequencyCloseAdjacentBlocksFlagged) {
  auto nl = make_fixture(4, 2);  // edges at 6.50 and 6.52 GHz (Δ=0.02 < Δc)
  lay_blocks(nl, 0, {{6.5, 9.5}, {7.5, 9.5}, {8.5, 9.5}, {9.5, 9.5}});
  lay_blocks(nl, 1, {{6.5, 10.5}, {7.5, 10.5}, {8.5, 10.5}, {9.5, 10.5}});
  const auto rep = compute_hotspots(nl);
  EXPECT_GT(rep.pairs.size(), 0u);
  EXPECT_GT(rep.ph, 0.0);
  // All four qubits are endpoints of the two hot edges.
  EXPECT_EQ(rep.hq, 4);
}

TEST(Hotspots, SameEdgeBlocksExcluded) {
  auto nl = make_fixture();
  lay_blocks(nl, 0, {{6.5, 5.5}, {7.5, 5.5}, {8.5, 5.5}, {9.5, 5.5}});
  const auto rep = compute_hotspots(nl);
  for (const auto& p : rep.pairs) {
    const bool both_blocks =
        p.a.kind == NodeRef::Kind::kBlock && p.b.kind == NodeRef::Kind::kBlock;
    if (both_blocks) {
      EXPECT_NE(nl.block(p.a.id).edge, nl.block(p.b.id).edge);
    }
  }
}

TEST(Hotspots, IncidentQubitBlockPairExcluded) {
  auto nl = make_fixture();
  // Block touching its own qubit: must not be a hotspot pair.
  lay_blocks(nl, 0, {{5.5, 5.5}, {6.5, 5.5}, {7.5, 5.5}, {8.5, 5.5}});
  const auto rep = compute_hotspots(nl);
  for (const auto& p : rep.pairs) {
    const bool qubit_block = (p.a.kind != p.b.kind);
    EXPECT_FALSE(qubit_block) << "incident qubit-block pair flagged";
  }
}

TEST(Hotspots, QubitSpacingViolationCounted) {
  QuantumNetlist nl;
  nl.add_qubit({5.0, 5.0}, 3, 3, 5.00);
  nl.add_qubit({8.2, 5.0}, 3, 3, 5.01);  // gap 0.2 < 1.0 rule
  nl.set_die(Rect{0, 0, 20, 20});
  const auto rep = compute_hotspots(nl);
  EXPECT_EQ(rep.spacing_violations, 1);
  EXPECT_EQ(rep.hq, 2);  // same freq group & adjacent → hotspot pair
}

TEST(Hotspots, EdgeHotspotWeightLocalizes) {
  auto nl = make_fixture(4, 2);
  lay_blocks(nl, 0, {{6.5, 9.5}, {7.5, 9.5}, {8.5, 9.5}, {9.5, 9.5}});
  lay_blocks(nl, 1, {{6.5, 10.5}, {7.5, 10.5}, {8.5, 10.5}, {9.5, 10.5}});
  const double w0 = edge_hotspot_weight(nl, 0);
  const double w1 = edge_hotspot_weight(nl, 1);
  EXPECT_GT(w0, 0.0);
  // Symmetric situation → symmetric local weights.
  EXPECT_NEAR(w0, w1, 1e-9);
  // Moving edge 1 away clears both.
  lay_blocks(nl, 1, {{6.5, 17.5}, {7.5, 17.5}, {8.5, 17.5}, {9.5, 17.5}});
  EXPECT_DOUBLE_EQ(edge_hotspot_weight(nl, 0), 0.0);
}

TEST(Hotspots, PhNormalizedByComponentArea) {
  auto nl = make_fixture(4, 2);
  lay_blocks(nl, 0, {{6.5, 9.5}, {7.5, 9.5}, {8.5, 9.5}, {9.5, 9.5}});
  lay_blocks(nl, 1, {{6.5, 10.5}, {7.5, 10.5}, {8.5, 10.5}, {9.5, 10.5}});
  const auto rep = compute_hotspots(nl);
  double weight = 0.0;
  for (const auto& p : rep.pairs) weight += p.weight;
  EXPECT_NEAR(rep.ph, weight / nl.total_component_area(), 1e-12);
}

TEST(Hotspots, EdgeHotspotCountsMatchReport) {
  auto nl = make_fixture(4, 2);
  lay_blocks(nl, 0, {{6.5, 9.5}, {7.5, 9.5}, {8.5, 9.5}, {9.5, 9.5}});
  lay_blocks(nl, 1, {{6.5, 10.5}, {7.5, 10.5}, {8.5, 10.5}, {9.5, 10.5}});
  const auto rep = compute_hotspots(nl);
  const auto he = edge_hotspot_counts(nl, rep);
  ASSERT_EQ(he.size(), 2u);
  EXPECT_GT(he[0], 0);
  EXPECT_GT(he[1], 0);
}

}  // namespace
}  // namespace qgdp
