// Coarsening coverage for the multilevel global placer: the hierarchy
// construction preserves what it must (mass, connectivity, valid
// cluster maps), and — the property that actually matters downstream —
// uncoarsened placements run through all five legalization flows stay
// invariant-clean, at quality comparable to the retained flat loop.
#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "core/pipeline.h"
#include "netlist/netlist_builder.h"
#include "netlist/topologies.h"
#include "placement/global_placer.h"
#include "placement/multilevel.h"
#include "placement/nets.h"
#include "support/invariants.h"

namespace qgdp {
namespace {

using test_support::InvariantOptions;
using test_support::check_legality_invariants;

PlacementLevel finest_for(const QuantumNetlist& nl) {
  return make_finest_level(nl, build_connection_nets(nl, ConnectionStyle::kPseudo));
}

double total_mass(const PlacementLevel& level) {
  return std::accumulate(level.mass.begin(), level.mass.end(), 0.0);
}

double total_net_weight(const PlacementLevel& level) {
  double w = 0.0;
  for (const auto& net : level.nets) w += net.weight;
  return w;
}

TEST(Coarsening, FinestLevelMirrorsNetlist) {
  const QuantumNetlist nl = build_netlist(make_falcon27());
  const auto level = finest_for(nl);
  EXPECT_EQ(level.size(), nl.component_count());
  EXPECT_DOUBLE_EQ(total_mass(level), static_cast<double>(nl.component_count()));
  // CSR incidence holds every net twice (once per endpoint).
  EXPECT_EQ(level.inc_nbr.size(), 2 * level.nets.size());
  EXPECT_EQ(level.inc_off.size(), level.size() + 1);
}

TEST(Coarsening, EdgeClustersCollapseBlocksPerResonator) {
  const QuantumNetlist nl = build_netlist(make_falcon27());
  const auto fine = finest_for(nl);
  const auto coarse = coarsen_edge_clusters(nl, fine);

  std::size_t edges_with_blocks = 0;
  for (const auto& e : nl.edges()) {
    if (!e.blocks.empty()) ++edges_with_blocks;
  }
  EXPECT_EQ(coarse.size(), nl.qubit_count() + edges_with_blocks);
  EXPECT_DOUBLE_EQ(total_mass(coarse), total_mass(fine));

  // Valid, total cluster map: every fine body lands in range, and every
  // block of one edge lands in the same cluster.
  ASSERT_EQ(coarse.fine_to_coarse.size(), fine.size());
  for (const int c : coarse.fine_to_coarse) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, static_cast<int>(coarse.size()));
  }
  for (const auto& e : nl.edges()) {
    if (e.blocks.empty()) continue;
    const int nq = static_cast<int>(nl.qubit_count());
    const int cluster =
        coarse.fine_to_coarse[static_cast<std::size_t>(nq + e.blocks.front())];
    for (const int b : e.blocks) {
      EXPECT_EQ(coarse.fine_to_coarse[static_cast<std::size_t>(nq + b)], cluster);
    }
    EXPECT_GE(cluster, nq);  // block clusters come after the qubit singletons
  }

  // Intra-cluster nets collapse; what survives can only lose weight.
  EXPECT_LE(total_net_weight(coarse), total_net_weight(fine));
  EXPECT_GT(coarse.nets.size(), 0u);
}

TEST(Coarsening, MatchingShrinksAndRespectsMassCap) {
  const QuantumNetlist nl = build_netlist(make_falcon27());
  const auto fine = finest_for(nl);
  const auto mid = coarsen_edge_clusters(nl, fine);
  const double cap = 4.0 * total_mass(mid) / static_cast<double>(mid.size());
  const auto coarse = coarsen_matching(mid, cap);

  EXPECT_LT(coarse.size(), mid.size());
  EXPECT_DOUBLE_EQ(total_mass(coarse), total_mass(mid));
  for (const double m : coarse.mass) EXPECT_LE(m, cap);
  for (const int c : coarse.fine_to_coarse) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, static_cast<int>(coarse.size()));
  }
}

TEST(Coarsening, InterpolationMovesFineBodiesByClusterOffset) {
  const QuantumNetlist nl = build_netlist(make_falcon27());
  auto fine = finest_for(nl);
  auto coarse = coarsen_edge_clusters(nl, fine);
  const std::vector<double> x0 = coarse.x;
  const std::vector<double> y0 = coarse.y;
  // Displace one cluster and push the offset down.
  coarse.x[0] += 3.0;
  coarse.y[0] -= 2.0;
  const std::vector<double> fx = fine.x;
  const std::vector<double> fy = fine.y;
  interpolate_to_finer(coarse, x0, y0, fine);
  for (std::size_t i = 0; i < fine.size(); ++i) {
    const bool moved = coarse.fine_to_coarse[i] == 0;
    EXPECT_DOUBLE_EQ(fine.x[i], fx[i] + (moved ? 3.0 : 0.0));
    EXPECT_DOUBLE_EQ(fine.y[i], fy[i] - (moved ? 2.0 : 0.0));
  }
}

// The property that matters downstream: multilevel GP output must be
// legalizable by every flow with all invariants clean (the same bar
// tests/invariants_test.cpp holds the default path to, here forced to
// the deepest hierarchy the placer supports).
TEST(MultilevelPlacement, AllFlowsLegalFromMultilevelGp) {
  for (const std::string& topology : {std::string("Falcon"), std::string("heavyhex-7x12")}) {
    const auto spec = topology_by_name(topology);
    ASSERT_TRUE(spec.has_value()) << topology;
    QuantumNetlist gp_nl = build_netlist(*spec);
    GlobalPlacerOptions gp_opt;
    gp_opt.levels = 4;  // force the full V-cycle even on small devices
    const auto gp_stats = GlobalPlacer(gp_opt).place(gp_nl);
    EXPECT_GE(gp_stats.levels_used, 2) << topology;

    for (const LegalizerKind kind : all_legalizer_kinds()) {
      QuantumNetlist nl = gp_nl;
      PipelineOptions opt;
      opt.run_gp = false;
      opt.legalizer = kind;
      const auto out = Pipeline(opt).run(nl);

      InvariantOptions iopt;
      iopt.qubit_min_spacing = quantum_flow(kind) ? out.stats.qubit.spacing_used : 0.0;
      const auto failures = check_legality_invariants(nl, iopt);
      EXPECT_TRUE(failures.empty())
          << topology << " flow " << legalizer_name(kind) << ": " << failures.size()
          << " violation(s), first: " << failures.front();
    }
  }
}

// Quality gate against the retained flat loop: the multilevel result
// must not trade its speedup for placement quality — wirelength may
// only improve or stay close, and residual overlap must stay within
// the flat loop's ballpark (the scaling bench records the tight ≤5%
// bound at ≥500 qubits; this keeps a coarse tripwire in the suite).
TEST(MultilevelPlacement, QualityComparableToFlatBaseline) {
  const auto spec = topology_by_name("heavyhex-7x12");
  ASSERT_TRUE(spec.has_value());

  QuantumNetlist ml_nl = build_netlist(*spec);
  const auto ml = GlobalPlacer().place(ml_nl);

  QuantumNetlist flat_nl = build_netlist(*spec);
  GlobalPlacerOptions flat_opt;
  flat_opt.flat_baseline = true;
  const auto flat = GlobalPlacer(flat_opt).place(flat_nl);

  EXPECT_LE(ml.total_wirelength, flat.total_wirelength * 1.05);
  EXPECT_LE(ml.overlap_area, flat.overlap_area * 1.05);
}

}  // namespace
}  // namespace qgdp
