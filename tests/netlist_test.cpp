// Tests for the quantum netlist, topology generators (Table I counts),
// partitioning (Eq. 6), and the netlist builder.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/union_find.h"
#include "netlist/netlist_builder.h"
#include "netlist/quantum_netlist.h"
#include "netlist/topologies.h"

namespace qgdp {
namespace {

TEST(QuantumNetlist, AddAndQuery) {
  QuantumNetlist nl;
  const int q0 = nl.add_qubit({1, 1}, 3, 3, 5.0);
  const int q1 = nl.add_qubit({8, 1}, 3, 3, 5.07);
  const int e = nl.add_edge(q0, q1, 6.5, 12.0);
  EXPECT_EQ(nl.qubit_count(), 2u);
  EXPECT_EQ(nl.edge_count(), 1u);
  EXPECT_EQ(nl.edge_between(q0, q1), e);
  EXPECT_EQ(nl.edge_between(q1, q0), e);
  const auto nbrs = nl.neighbors(q0);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0], q1);
}

TEST(QuantumNetlist, PartitionEq6) {
  QuantumNetlist nl;
  const int q0 = nl.add_qubit({0, 0}, 3, 3, 5.0);
  const int q1 = nl.add_qubit({10, 0}, 3, 3, 5.07);
  nl.add_edge(q0, q1, 6.5, 12.0, 1.0);
  nl.partition_all_edges();
  // Eq. 6: lpad·L = n·lb² → n = 12 for L = 12, lpad = 1, lb = 1.
  EXPECT_EQ(nl.edge(0).block_count(), 12);
  EXPECT_EQ(nl.block_count(), 12u);
  for (const int b : nl.edge(0).blocks) {
    EXPECT_EQ(nl.block(b).edge, 0);
  }
}

TEST(QuantumNetlist, TotalComponentArea) {
  QuantumNetlist nl;
  nl.add_qubit({0, 0}, 3, 3, 5.0);
  nl.add_qubit({10, 0}, 3, 3, 5.0);
  nl.add_edge(0, 1, 6.5, 10.0, 1.0);
  nl.partition_all_edges();
  EXPECT_DOUBLE_EQ(nl.total_component_area(), 9.0 + 9.0 + 10.0);
}

struct TopologyCase {
  const char* name;
  int qubits;
  int edges;
};

class TopologyCounts : public ::testing::TestWithParam<TopologyCase> {};

TEST_P(TopologyCounts, MatchesPaperTableI) {
  const auto p = GetParam();
  const auto topos = all_paper_topologies();
  const auto it = std::find_if(topos.begin(), topos.end(),
                               [&](const DeviceSpec& d) { return d.name == p.name; });
  ASSERT_NE(it, topos.end()) << "missing topology " << p.name;
  EXPECT_EQ(it->qubit_count, p.qubits);
  EXPECT_EQ(it->edge_count(), p.edges);
  EXPECT_EQ(static_cast<int>(it->coords.size()), p.qubits);
}

INSTANTIATE_TEST_SUITE_P(PaperTopologies, TopologyCounts,
                         ::testing::Values(TopologyCase{"Grid", 25, 40},
                                           TopologyCase{"Xtree", 53, 52},
                                           TopologyCase{"Falcon", 27, 28},
                                           TopologyCase{"Eagle", 127, 144},
                                           TopologyCase{"Aspen-11", 40, 48},
                                           TopologyCase{"Aspen-M", 80, 106}));

TEST(Topologies, AllConnectedAndSimple) {
  for (const auto& d : all_paper_topologies()) {
    UnionFind uf(static_cast<std::size_t>(d.qubit_count));
    std::set<std::pair<int, int>> seen;
    for (const auto& [a, b] : d.couplings) {
      ASSERT_GE(a, 0);
      ASSERT_LT(a, d.qubit_count);
      ASSERT_GE(b, 0);
      ASSERT_LT(b, d.qubit_count);
      ASSERT_NE(a, b) << d.name << " has a self-loop";
      const auto key = std::minmax(a, b);
      EXPECT_TRUE(seen.insert({key.first, key.second}).second)
          << d.name << " has duplicate edge " << a << "-" << b;
      uf.unite(static_cast<std::size_t>(a), static_cast<std::size_t>(b));
    }
    EXPECT_EQ(uf.component_count(), 1u) << d.name << " is disconnected";
  }
}

TEST(Topologies, HeavyHexDegreeBounds) {
  // Heavy-hex devices have max degree 3 (chains + connectors).
  for (const auto& d : {make_falcon27(), make_eagle127()}) {
    std::vector<int> deg(static_cast<std::size_t>(d.qubit_count), 0);
    for (const auto& [a, b] : d.couplings) {
      ++deg[static_cast<std::size_t>(a)];
      ++deg[static_cast<std::size_t>(b)];
    }
    EXPECT_LE(*std::max_element(deg.begin(), deg.end()), 3) << d.name;
  }
}

TEST(Topologies, XtreeIsTree) {
  const auto d = make_xtree();
  EXPECT_EQ(d.edge_count(), d.qubit_count - 1);  // tree invariant
}

TEST(Topologies, OctagonDegrees) {
  // Every octagon qubit has ring degree 2 plus at most 2 inter-octagon
  // links.
  const auto d = make_octagon_device(2, 5);
  std::vector<int> deg(static_cast<std::size_t>(d.qubit_count), 0);
  for (const auto& [a, b] : d.couplings) {
    ++deg[static_cast<std::size_t>(a)];
    ++deg[static_cast<std::size_t>(b)];
  }
  for (const int dg : deg) {
    EXPECT_GE(dg, 2);
    EXPECT_LE(dg, 4);
  }
}

TEST(NetlistBuilder, BuildsAllTopologies) {
  for (const auto& spec : all_paper_topologies()) {
    const auto nl = build_netlist(spec);
    EXPECT_EQ(static_cast<int>(nl.qubit_count()), spec.qubit_count);
    EXPECT_EQ(static_cast<int>(nl.edge_count()), spec.edge_count());
    EXPECT_GT(nl.block_count(), 0u);
    // Die sized for ≈55% utilization.
    const double util = nl.total_component_area() / nl.die().area();
    EXPECT_GT(util, 0.35) << spec.name;
    EXPECT_LT(util, 0.70) << spec.name;
    // All seeded positions inside the die.
    for (const auto& q : nl.qubits()) {
      EXPECT_TRUE(nl.die().contains(q.rect())) << spec.name << " qubit " << q.id;
    }
  }
}

TEST(NetlistBuilder, AdjacentQubitsGetDifferentFrequencyGroups) {
  const auto nl = build_netlist(make_grid_device());
  for (const auto& e : nl.edges()) {
    const double df = std::abs(nl.qubit(e.q0).frequency - nl.qubit(e.q1).frequency);
    EXPECT_GT(df, 0.03) << "adjacent qubits " << e.q0 << "," << e.q1
                        << " too close in frequency";
  }
}

TEST(NetlistBuilder, ResonatorsSharingQubitDetuned) {
  const auto nl = build_netlist(make_grid_device());
  for (const auto& q : nl.qubits()) {
    const auto& inc = nl.incident_edges(q.id);
    for (std::size_t i = 0; i < inc.size(); ++i) {
      for (std::size_t j = i + 1; j < inc.size(); ++j) {
        const double df =
            std::abs(nl.edge(inc[i]).frequency - nl.edge(inc[j]).frequency);
        EXPECT_GT(df, 1e-6) << "degenerate resonators at qubit " << q.id;
      }
    }
  }
}

TEST(NetlistBuilder, BlockCountsMatchTableIIIScale) {
  // Paper Table III reports ≈12.5 wire blocks per resonator
  // (e.g. Eagle: 1801 cells / 144 edges).
  const auto nl = build_netlist(make_eagle127());
  const double per_edge =
      static_cast<double>(nl.block_count()) / static_cast<double>(nl.edge_count());
  EXPECT_GT(per_edge, 10.0);
  EXPECT_LT(per_edge, 15.0);
}

TEST(NetlistBuilder, Deterministic) {
  const auto a = build_netlist(make_falcon27());
  const auto b = build_netlist(make_falcon27());
  ASSERT_EQ(a.qubit_count(), b.qubit_count());
  for (std::size_t i = 0; i < a.qubit_count(); ++i) {
    EXPECT_DOUBLE_EQ(a.qubit(static_cast<int>(i)).frequency,
                     b.qubit(static_cast<int>(i)).frequency);
    EXPECT_EQ(a.qubit(static_cast<int>(i)).pos, b.qubit(static_cast<int>(i)).pos);
  }
}

}  // namespace
}  // namespace qgdp
