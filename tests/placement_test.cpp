// Tests for connection nets, the spatial hash, and the global placer.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "netlist/netlist_builder.h"
#include "netlist/topologies.h"
#include "placement/global_placer.h"
#include "placement/nets.h"
#include "geometry/spatial_hash.h"

namespace qgdp {
namespace {

QuantumNetlist two_qubit_netlist(int blocks) {
  QuantumNetlist nl;
  nl.add_qubit({5, 5}, 3, 3, 5.0);
  nl.add_qubit({15, 5}, 3, 3, 5.07);
  nl.add_edge(0, 1, 6.5, static_cast<double>(blocks), 1.0);
  nl.partition_all_edges();
  nl.set_die(Rect{0, 0, 24, 24});
  return nl;
}

TEST(Nets, SnakeChainTopology) {
  const auto nl = two_qubit_netlist(6);
  const auto nets = build_connection_nets(nl, ConnectionStyle::kSnake);
  // q0-b0, five b-b links, b5-q1 = 7 nets for 6 blocks.
  EXPECT_EQ(nets.size(), 7u);
  int qubit_taps = 0;
  for (const auto& n : nets) {
    qubit_taps += (n.a.kind == NodeRef::Kind::kQubit) + (n.b.kind == NodeRef::Kind::kQubit);
  }
  EXPECT_EQ(qubit_taps, 2);
}

TEST(Nets, PseudoGridTopology) {
  const auto nl = two_qubit_netlist(9);
  const auto nets = build_connection_nets(nl, ConnectionStyle::kPseudo);
  // 3×3 arrangement: 6 horizontal + 6 vertical internal links + 2 taps.
  EXPECT_EQ(nets.size(), 14u);
}

TEST(Nets, PseudoHasMoreInternalConnectivityThanSnake) {
  // The whole point of pseudo connections (Fig. 5): richer adjacency.
  const auto nl = two_qubit_netlist(12);
  EXPECT_GT(build_connection_nets(nl, ConnectionStyle::kPseudo).size(),
            build_connection_nets(nl, ConnectionStyle::kSnake).size());
}

TEST(Nets, NonPartitionedEdgeConnectsQubitsDirectly) {
  QuantumNetlist nl;
  nl.add_qubit({0, 0}, 3, 3, 5.0);
  nl.add_qubit({9, 0}, 3, 3, 5.07);
  nl.add_edge(0, 1, 6.5, 10.0);
  const auto nets = build_connection_nets(nl, ConnectionStyle::kPseudo);
  ASSERT_EQ(nets.size(), 1u);
  EXPECT_EQ(nets[0].a.kind, NodeRef::Kind::kQubit);
  EXPECT_EQ(nets[0].b.kind, NodeRef::Kind::kQubit);
}

TEST(SpatialHash, FindsAllNearItems) {
  // Brute-force comparison: every pair within the bucket radius must be
  // discoverable through for_each_near.
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> coord(0.0, 40.0);
  std::vector<Point> pts;
  for (int i = 0; i < 200; ++i) pts.push_back({coord(rng), coord(rng)});
  const double radius = 4.0;
  SpatialHash hash(Rect{0, 0, 40, 40}, radius);
  for (std::size_t i = 0; i < pts.size(); ++i) hash.insert(static_cast<int>(i), pts[i]);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::set<int> found;
    hash.for_each_near(pts[i], [&](int j) { found.insert(j); });
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (distance(pts[i], pts[j]) <= radius) {
        EXPECT_TRUE(found.count(static_cast<int>(j)))
            << "pair (" << i << "," << j << ") within radius but not found";
      }
    }
  }
}

TEST(GlobalPlacer, ReducesOverlapAndStaysInDie) {
  QuantumNetlist nl = build_netlist(make_grid_device());
  const double before = total_overlap_area(nl);
  GlobalPlacer gp;
  const auto stats = gp.place(nl);
  EXPECT_LT(stats.overlap_area, before);
  const Rect die = nl.die();
  for (const auto& q : nl.qubits()) {
    EXPECT_TRUE(die.inflated(1e-6).contains(q.rect()));
  }
  for (const auto& b : nl.blocks()) {
    EXPECT_TRUE(die.inflated(1e-6).contains(b.rect()));
  }
}

TEST(GlobalPlacer, DeterministicForFixedSeed) {
  QuantumNetlist a = build_netlist(make_falcon27());
  QuantumNetlist b = build_netlist(make_falcon27());
  GlobalPlacer gp;
  gp.place(a);
  gp.place(b);
  for (std::size_t i = 0; i < a.block_count(); ++i) {
    EXPECT_EQ(a.block(static_cast<int>(i)).pos, b.block(static_cast<int>(i)).pos);
  }
}

TEST(GlobalPlacer, SeedChangesLayout) {
  QuantumNetlist a = build_netlist(make_falcon27());
  QuantumNetlist b = build_netlist(make_falcon27());
  GlobalPlacerOptions o1;
  o1.seed = 1;
  GlobalPlacerOptions o2;
  o2.seed = 2;
  GlobalPlacer(o1).place(a);
  GlobalPlacer(o2).place(b);
  bool any_different = false;
  for (std::size_t i = 0; i < a.block_count() && !any_different; ++i) {
    any_different = !(a.block(static_cast<int>(i)).pos == b.block(static_cast<int>(i)).pos);
  }
  EXPECT_TRUE(any_different);
}

TEST(GlobalPlacer, PseudoConnectionsYieldCompacterResonators) {
  // Fig. 5 ablation in miniature: mean resonator bounding-box
  // half-perimeter should be no worse under pseudo connections.
  auto run = [](ConnectionStyle style) {
    QuantumNetlist nl = build_netlist(make_grid_device());
    GlobalPlacerOptions opt;
    opt.style = style;
    GlobalPlacer(opt).place(nl);
    double hp = 0.0;
    for (const auto& e : nl.edges()) {
      Rect bb = nl.block(e.blocks.front()).rect();
      for (const int b : e.blocks) bb = bb.united(nl.block(b).rect());
      hp += bb.width() + bb.height();
    }
    return hp / static_cast<double>(nl.edge_count());
  };
  const double pseudo = run(ConnectionStyle::kPseudo);
  const double snake = run(ConnectionStyle::kSnake);
  EXPECT_LE(pseudo, snake * 1.05);
}

TEST(WirelengthAndOverlap, ZeroForEmptyAndSeparated) {
  QuantumNetlist nl;
  nl.add_qubit({2, 2}, 3, 3, 5.0);
  nl.add_qubit({12, 2}, 3, 3, 5.1);
  nl.set_die(Rect{0, 0, 20, 20});
  EXPECT_DOUBLE_EQ(total_overlap_area(nl), 0.0);
  const std::vector<Net> nets = {
      {{NodeRef::Kind::kQubit, 0}, {NodeRef::Kind::kQubit, 1}, 2.0}};
  EXPECT_DOUBLE_EQ(total_wirelength(nl, nets), 20.0);
}

}  // namespace
}  // namespace qgdp
