// Differential coverage for the cell-blocked repulsion kernels
// (placement/repulsion_kernel.h):
//
//   1. the SIMD blocked path is pinned bit-for-bit to the retained
//      per-body gather oracle (accumulate_reference) in both exact and
//      far-field modes, across thread-pool sizes 1/4/8 and across
//      several refresh cycles with drifting positions (exercising the
//      incremental re-bucketing);
//   2. the far-field monopole approximation stays within a force-level
//      epsilon of the exact path on a realistic settled layout;
//   3. a pipeline-level quality tripwire: running GP with
//      `freq_farfield` must not degrade the paper metrics (hotspot
//      rate, resonator crossings) beyond noise-scale bounds on any
//      paper topology x flow combination.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "metrics/crossings.h"
#include "metrics/hotspots.h"
#include "netlist/netlist_builder.h"
#include "netlist/topologies.h"
#include "placement/global_placer.h"
#include "placement/multilevel.h"
#include "placement/nets.h"
#include "placement/repulsion_kernel.h"
#include "runtime/thread_pool.h"

namespace qgdp {
namespace {

struct LevelState {
  PlacementLevel level;
  Rect die;
};

/// Finest placement level of a topology after a default GP run — a
/// realistic mid-flight body distribution (clustered resonator blocks,
/// settled qubit macros).
LevelState settled_level(const std::string& topology) {
  const auto spec = topology_by_name(topology);
  EXPECT_TRUE(spec.has_value()) << topology;
  QuantumNetlist nl = build_netlist(*spec);
  GlobalPlacerOptions opt;
  opt.seed = 1u;
  GlobalPlacer(opt).place(nl);
  const auto nets = build_connection_nets(nl, ConnectionStyle::kPseudo);
  return {make_finest_level(nl, nets), nl.die()};
}

bool bytes_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

class RepulsionKernelDifferential : public ::testing::TestWithParam<bool> {};

// The core contract of the rearchitecture: the blocked SIMD kernels
// must produce byte-identical forces to the per-body reference gather,
// at any pool size, through refresh cycles that re-bucket drifting
// bodies.
TEST_P(RepulsionKernelDifferential, BlockedMatchesReferenceBitIdentical) {
  const bool farfield = GetParam();
  for (const std::string topology : {std::string("Falcon"), std::string("heavyhex-7x12")}) {
    auto state = settled_level(topology);
    PlacementLevel& lvl = state.level;
    const std::size_t n = lvl.size();
    ASSERT_GT(n, 0u);

    RepulsionKernelOptions kopt;
    kopt.freq_farfield = farfield;
    RepulsionKernel kernel(state.die, n, lvl.half_w.data(), lvl.half_h.data(),
                           lvl.freq.data(), kopt);
    std::vector<double> x = lvl.x, y = lvl.y;
    for (int it = 0; it < 6; ++it) {
      kernel.refresh(x.data(), y.data());
      std::vector<double> blocked(2 * n, 0.0);
      {
        ThreadPool pool(1);
        kernel.accumulate(x.data(), y.data(), 0.45, 0.25, blocked.data(),
                          blocked.data() + n, pool, 0);
      }
      for (const std::size_t threads : {4u, 8u}) {
        ThreadPool pool(threads);
        std::vector<double> f(2 * n, 0.0);
        kernel.accumulate(x.data(), y.data(), 0.45, 0.25, f.data(), f.data() + n, pool, 0);
        EXPECT_TRUE(bytes_equal(blocked, f))
            << topology << " farfield=" << farfield << " it=" << it
            << ": forces differ between pool sizes 1 and " << threads;
      }
      std::vector<double> reference(2 * n, 0.0);
      kernel.accumulate_reference(x.data(), y.data(), 0.45, 0.25, reference.data(),
                                  reference.data() + n);
      ASSERT_TRUE(bytes_equal(blocked, reference))
          << topology << " farfield=" << farfield << " it=" << it
          << ": blocked kernel differs from the per-body gather oracle";

      // Drift with the computed forces so later refreshes re-bucket a
      // realistic subset of bodies.
      for (std::size_t k = 0; k < n; ++k) {
        x[k] = std::min(std::max(x[k] + blocked[k] * 0.4, state.die.lo.x), state.die.hi.x);
        y[k] = std::min(std::max(y[k] + blocked[k + n] * 0.4, state.die.lo.y),
                        state.die.hi.y);
      }
    }
    // The drift loop above must actually have exercised incremental
    // maintenance, not just value refreshes.
    EXPECT_GT(kernel.stats().rebucketed, 0);
    EXPECT_GE(kernel.stats().flattens, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, RepulsionKernelDifferential, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "farfield" : "exact";
                         });

// Force-level epsilon: the monopole approximation only touches cells
// beyond the near ring, where the linear falloff is weakest, so the
// aggregate force field stays close to the exact one.
TEST(RepulsionKernelFarfield, ForcesWithinEpsilonOfExact) {
  auto state = settled_level("Falcon");
  PlacementLevel& lvl = state.level;
  const std::size_t n = lvl.size();
  ThreadPool pool(1);

  std::vector<double> exact(2 * n, 0.0), far(2 * n, 0.0);
  for (int mode = 0; mode < 2; ++mode) {
    RepulsionKernelOptions kopt;
    kopt.freq_farfield = mode == 1;
    RepulsionKernel kernel(state.die, n, lvl.half_w.data(), lvl.half_h.data(),
                           lvl.freq.data(), kopt);
    kernel.refresh(lvl.x.data(), lvl.y.data());
    auto& f = mode == 1 ? far : exact;
    kernel.accumulate(lvl.x.data(), lvl.y.data(), 0.45, 0.25, f.data(), f.data() + n, pool,
                      0);
  }
  double err = 0.0, ref = 0.0;
  for (std::size_t k = 0; k < 2 * n; ++k) {
    err += std::abs(far[k] - exact[k]);
    ref += std::abs(exact[k]);
  }
  ASSERT_GT(ref, 0.0);
  // Mean absolute force deviation bounded at 15% of the mean exact
  // force magnitude — the documented error scale of per-cell monopoles
  // at cell = radius/2 (error ~ cell diagonal / distance on the far
  // ring, weighted by the linear falloff).
  EXPECT_LT(err / ref, 0.15) << "far-field force deviation " << err / ref;
}

// Pipeline-level tripwire: far-field placement quality must stay at
// the exact path's level on every paper topology x flow. The bounds
// are one-sided (improvement is fine) with absolute floors at the
// deterministic noise scale of these integer/percentage metrics —
// measured deltas sit well inside; a geometry bug in the monopole path
// (double counting, wrong gate) blows past them immediately.
TEST(RepulsionKernelFarfield, QualityTripwireAcrossFlowsAndTopologies) {
  for (const auto& spec : all_paper_topologies()) {
    QuantumNetlist exact_nl = build_netlist(spec);
    QuantumNetlist far_nl = build_netlist(spec);
    GlobalPlacerOptions exact_opt;
    exact_opt.freq_farfield = false;
    GlobalPlacerOptions far_opt;
    far_opt.freq_farfield = true;
    GlobalPlacer(exact_opt).place(exact_nl);
    GlobalPlacer(far_opt).place(far_nl);

    for (const LegalizerKind kind : all_legalizer_kinds()) {
      QuantumNetlist a = exact_nl;
      QuantumNetlist b = far_nl;
      PipelineOptions popt;
      popt.run_gp = false;
      popt.legalizer = kind;
      (void)Pipeline(popt).run(a);
      (void)Pipeline(popt).run(b);

      const double ph_exact = compute_hotspots(a).ph * 100.0;
      const double ph_far = compute_hotspots(b).ph * 100.0;
      const long long cr_exact = compute_crossings(a).total;
      const long long cr_far = compute_crossings(b).total;

      EXPECT_LE(ph_far, ph_exact + std::max(0.10 * ph_exact, 0.85))
          << spec.name << "/" << legalizer_name(kind) << ": hotspot rate regressed "
          << ph_exact << "% -> " << ph_far << "%";
      EXPECT_LE(static_cast<double>(cr_far),
                static_cast<double>(cr_exact) + std::max(0.075 * cr_exact, 12.0))
          << spec.name << "/" << legalizer_name(kind) << ": crossings regressed " << cr_exact
          << " -> " << cr_far;
    }
  }
}

// The far-field path must keep every legalization invariant clean —
// the same bar the exact path is held to in invariants_test.cpp.
TEST(RepulsionKernelFarfield, InvariantsCleanThroughPipeline) {
  const auto spec = topology_by_name("heavyhex-7x12");
  ASSERT_TRUE(spec.has_value());
  QuantumNetlist gp_nl = build_netlist(*spec);
  GlobalPlacerOptions opt;
  opt.freq_farfield = true;
  GlobalPlacer(opt).place(gp_nl);
  for (const LegalizerKind kind : all_legalizer_kinds()) {
    QuantumNetlist nl = gp_nl;
    PipelineOptions popt;
    popt.run_gp = false;
    popt.legalizer = kind;
    const auto out = Pipeline(popt).run(nl);
    EXPECT_TRUE(out.stats.qubit.success) << legalizer_name(kind);
    EXPECT_TRUE(out.stats.blocks.success) << legalizer_name(kind);
  }
}

}  // namespace
}  // namespace qgdp
