// Tests for the maze router (BFS/Lee and A*).
#include <gtest/gtest.h>

#include <random>

#include "legalization/bin_grid.h"
#include "routing/maze_router.h"

namespace qgdp {
namespace {

TEST(MazeRouter, StraightLine) {
  BinGrid g(Rect{0, 0, 10, 10});
  MazeRouter r(g);
  RouteRequest req;
  req.start = {0, 5};
  req.goal = {9, 5};
  const auto res = r.route(req);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.path.size(), 10u);  // inclusive endpoints
  EXPECT_EQ(res.path.front(), req.start);
  EXPECT_EQ(res.path.back(), req.goal);
}

TEST(MazeRouter, PathIsFourConnectedAndFree) {
  BinGrid g(Rect{0, 0, 12, 12});
  g.block_rect(Rect{3, 0, 5, 9});
  MazeRouter r(g);
  RouteRequest req;
  req.start = {0, 0};
  req.goal = {11, 0};
  const auto res = r.route(req);
  ASSERT_TRUE(res.found);
  for (std::size_t i = 0; i + 1 < res.path.size(); ++i) {
    const auto a = res.path[i];
    const auto b = res.path[i + 1];
    EXPECT_EQ(std::abs(a.ix - b.ix) + std::abs(a.iy - b.iy), 1);
    EXPECT_TRUE(g.is_free(b));
  }
}

TEST(MazeRouter, DetoursAroundObstacle) {
  BinGrid g(Rect{0, 0, 11, 11});
  // Wall with a single gap at the top.
  g.block_rect(Rect{5, 0, 6, 10});
  MazeRouter r(g);
  RouteRequest req;
  req.start = {0, 0};
  req.goal = {10, 0};
  const auto res = r.route(req);
  ASSERT_TRUE(res.found);
  // Must detour via y=10: path length ≥ 10 (direct) + 2*10 (detour).
  EXPECT_GE(res.path.size(), 31u);
}

TEST(MazeRouter, NoRouteWhenWalledOff) {
  BinGrid g(Rect{0, 0, 10, 10});
  g.block_rect(Rect{5, 0, 6, 10});  // full-height wall
  MazeRouter r(g);
  RouteRequest req;
  req.start = {0, 5};
  req.goal = {9, 5};
  EXPECT_FALSE(r.route(req).found);
  EXPECT_FALSE(r.route_astar(req).found);
}

TEST(MazeRouter, WindowRestrictsSearch) {
  BinGrid g(Rect{0, 0, 20, 20});
  g.block_rect(Rect{5, 0, 6, 10});  // wall reaching y=10
  MazeRouter r(g);
  RouteRequest req;
  req.start = {0, 5};
  req.goal = {10, 5};
  req.window = Rect{0, 0, 20, 9};  // window stops below the wall top
  EXPECT_FALSE(r.route(req).found);
  req.window = Rect{0, 0, 20, 20};
  EXPECT_TRUE(r.route(req).found);
}

TEST(MazeRouter, ExtraFreeBinsAreUsable) {
  BinGrid g(Rect{0, 0, 10, 3});
  // Occupy the middle column fully.
  for (int y = 0; y < 3; ++y) g.occupy({5, y}, 100 + y);
  MazeRouter r(g);
  RouteRequest req;
  req.start = {0, 1};
  req.goal = {9, 1};
  EXPECT_FALSE(r.route(req).found);
  req.extra_free = {{5, 1}};
  const auto res = r.route(req);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.path.size(), 10u);
}

TEST(MazeRouter, StartEqualsGoal) {
  BinGrid g(Rect{0, 0, 5, 5});
  MazeRouter r(g);
  RouteRequest req;
  req.start = {2, 2};
  req.goal = {2, 2};
  const auto res = r.route(req);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.path.size(), 1u);
}

// Property: A* and BFS find equally long shortest paths on random
// obstacle fields.
class RouterEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(RouterEquivalence, AstarMatchesBfsLength) {
  std::mt19937 rng(GetParam());
  BinGrid g(Rect{0, 0, 16, 16});
  std::uniform_int_distribution<int> c(0, 15);
  for (int k = 0; k < 90; ++k) {
    const BinCoord b{c(rng), c(rng)};
    if (g.is_free(b)) g.occupy(b, k);
  }
  MazeRouter r(g);
  for (int t = 0; t < 40; ++t) {
    RouteRequest req;
    req.start = {c(rng), c(rng)};
    req.goal = {c(rng), c(rng)};
    if (!g.is_free(req.start) || !g.is_free(req.goal)) continue;
    const auto bfs = r.route(req);
    const auto astar = r.route_astar(req);
    ASSERT_EQ(bfs.found, astar.found);
    if (bfs.found) {
      EXPECT_EQ(bfs.path.size(), astar.path.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterEquivalence, ::testing::Values(5u, 55u, 555u, 5555u));

}  // namespace
}  // namespace qgdp
