// Runtime subsystem tests: ThreadPool task execution, parallel_for
// bounds / chunking / exception propagation, and the BatchRunner
// determinism contract — the merged matrix results must be
// bit-identical across any lane count (jobs = 1 vs jobs = 8).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "netlist/netlist_builder.h"
#include "netlist/topologies.h"
#include "runtime/batch_runner.h"
#include "runtime/thread_pool.h"

namespace qgdp {
namespace {

// ---- ThreadPool ------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::mutex m;
  std::condition_variable cv;
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] {
      if (counter.fetch_add(1) + 1 == kTasks) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(m);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return counter.load() == kTasks; }));
}

TEST(ThreadPool, DefaultConcurrencyAtLeastOne) {
  EXPECT_GE(ThreadPool::default_concurrency(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) pool.submit([&] { counter.fetch_add(1); });
  }  // join on destruction
  EXPECT_EQ(counter.load(), 32);
}

// ---- parallel_for ----------------------------------------------------

class ParallelForJobs : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelForJobs, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(pool, 0, kN, GetParam(), [&](std::size_t i) {
    ASSERT_LT(i, kN);
    visits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(Lanes, ParallelForJobs,
                         ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{3},
                                           std::size_t{8}, std::size_t{0}));

TEST(ParallelFor, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for(pool, 5, 5, 4, [&](std::size_t) { calls.fetch_add(1); });
  parallel_for(pool, 7, 3, 4, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, NonZeroBeginOffset) {
  ThreadPool pool(2);
  std::vector<int> hit(20, 0);
  parallel_for(pool, 10, 20, 4, [&](std::size_t i) { hit[i] = 1; });
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(hit[i], i >= 10 ? 1 : 0);
}

TEST(ParallelFor, MoreJobsThanIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  parallel_for(pool, 0, 3, 16, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, PropagatesExceptionFromBody) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 100, 4,
                   [](std::size_t i) {
                     if (i == 57) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, PropagatesExceptionSerially) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 10, 1,
                            [](std::size_t) { throw std::logic_error("serial boom"); }),
               std::logic_error);
}

TEST(ParallelFor, PoolStaysUsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 0, 8, 4, [](std::size_t) { throw std::runtime_error("once"); }),
      std::runtime_error);
  std::atomic<int> sum{0};
  parallel_for(pool, 0, 10, 4, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelFor, NestedInvocationDoesNotDeadlock) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> visits(64);
  parallel_for(pool, 0, 8, 4, [&](std::size_t outer) {
    parallel_for(pool, 0, 8, 4,
                 [&](std::size_t inner) { visits[outer * 8 + inner].fetch_add(1); });
  });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

// ---- BatchRunner determinism ----------------------------------------

/// Exact structural + positional equality of two layouts: asserts the
/// contract-defining identical_layout() helper, then re-walks the
/// coordinates individually so a failure names the diverging component.
void expect_identical_layout(const QuantumNetlist& a, const QuantumNetlist& b) {
  EXPECT_TRUE(identical_layout(a, b));
  ASSERT_EQ(a.qubit_count(), b.qubit_count());
  ASSERT_EQ(a.block_count(), b.block_count());
  for (std::size_t q = 0; q < a.qubit_count(); ++q) {
    const auto i = static_cast<int>(q);
    EXPECT_EQ(a.qubit(i).pos.x, b.qubit(i).pos.x) << "qubit " << q;
    EXPECT_EQ(a.qubit(i).pos.y, b.qubit(i).pos.y) << "qubit " << q;
  }
  for (std::size_t w = 0; w < a.block_count(); ++w) {
    const auto i = static_cast<int>(w);
    EXPECT_EQ(a.block(i).pos.x, b.block(i).pos.x) << "block " << w;
    EXPECT_EQ(a.block(i).pos.y, b.block(i).pos.y) << "block " << w;
  }
}

std::vector<BatchJob> small_matrix() {
  return BatchRunner::matrix({make_grid_device(), make_falcon27()},
                             {LegalizerKind::kQgdp, LegalizerKind::kTetris}, {1u, 7u},
                             /*detailed=*/true);
}

TEST(BatchRunner, MatrixExpandsFullCrossProduct) {
  const auto jobs = small_matrix();
  ASSERT_EQ(jobs.size(), 8u);  // 2 specs × 2 kinds × 2 seeds
  // Row-major (spec, kind, seed) order.
  EXPECT_EQ(jobs[0].spec.name, "Grid");
  EXPECT_EQ(jobs[0].kind, LegalizerKind::kQgdp);
  EXPECT_EQ(jobs[0].gp_seed, 1u);
  EXPECT_EQ(jobs[1].gp_seed, 7u);
  EXPECT_EQ(jobs[2].kind, LegalizerKind::kTetris);
  EXPECT_EQ(jobs[4].spec.name, "Falcon");
  // DP only on qGDP jobs.
  EXPECT_TRUE(jobs[0].run_detailed);
  EXPECT_FALSE(jobs[2].run_detailed);
}

TEST(BatchRunner, ResultsIdenticalAcrossJobs1AndJobs8) {
  const auto jobs = small_matrix();

  BatchOptions serial;
  serial.jobs = 1;
  const auto ref = BatchRunner(serial).run(jobs);

  BatchOptions wide;
  wide.jobs = 8;
  ThreadPool pool(8);
  wide.pool = &pool;
  const auto par = BatchRunner(wide).run(jobs);

  ASSERT_EQ(ref.size(), jobs.size());
  ASSERT_EQ(par.size(), jobs.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    SCOPED_TRACE(ref[i].job.spec.name + "/" + legalizer_name(ref[i].job.kind) + "/seed " +
                 std::to_string(ref[i].job.gp_seed));
    // Ordered merge: slot i holds job i on both paths.
    EXPECT_EQ(par[i].job.kind, jobs[i].kind);
    EXPECT_EQ(par[i].job.gp_seed, jobs[i].gp_seed);
    // Bit-identical layouts and stats.
    expect_identical_layout(ref[i].netlist, par[i].netlist);
    EXPECT_EQ(ref[i].stats.qubit.total_displacement, par[i].stats.qubit.total_displacement);
    EXPECT_EQ(ref[i].stats.blocks.total_displacement, par[i].stats.blocks.total_displacement);
    EXPECT_EQ(ref[i].stats.blocks.placed, par[i].stats.blocks.placed);
    EXPECT_EQ(ref[i].stats.qubit.spacing_used, par[i].stats.qubit.spacing_used);
  }
}

TEST(BatchRunner, SharedGpLayoutSkipsGlobalPlacement) {
  // Two flows from one pre-placed layout must start from identical
  // positions (the paper's shared-GP contract) and leave the source
  // layout untouched.
  QuantumNetlist gp = build_netlist(make_grid_device());
  GlobalPlacer{}.place(gp);
  const QuantumNetlist gp_copy = gp;

  std::vector<BatchJob> jobs(2);
  jobs[0].spec = make_grid_device();
  jobs[0].kind = LegalizerKind::kQgdp;
  jobs[0].gp_layout = &gp;
  jobs[1].spec = make_grid_device();
  jobs[1].kind = LegalizerKind::kTetris;
  jobs[1].gp_layout = &gp;

  BatchOptions opt;
  opt.jobs = 2;
  const auto results = BatchRunner(opt).run(jobs);
  ASSERT_EQ(results.size(), 2u);
  expect_identical_layout(gp, gp_copy);
  // Each flow legalized something (layouts differ from raw GP).
  EXPECT_GT(results[0].stats.qubit.total_displacement +
                results[0].stats.blocks.total_displacement,
            0.0);
}

}  // namespace
}  // namespace qgdp
