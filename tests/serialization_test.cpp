// Tests for .qdev / .qlay serialization round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/pipeline.h"
#include "io/serialization.h"
#include "metrics/audit.h"
#include "netlist/netlist_builder.h"
#include "netlist/topologies.h"

namespace qgdp {
namespace {

TEST(DeviceSerialization, RoundTripAllTopologies) {
  for (const auto& spec : all_paper_topologies()) {
    std::stringstream ss;
    write_device(spec, ss);
    const DeviceSpec back = read_device(ss);
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.qubit_count, spec.qubit_count);
    ASSERT_EQ(back.couplings.size(), spec.couplings.size());
    for (std::size_t i = 0; i < spec.couplings.size(); ++i) {
      EXPECT_EQ(back.couplings[i], spec.couplings[i]);
    }
    for (int q = 0; q < spec.qubit_count; ++q) {
      EXPECT_EQ(back.coords[static_cast<std::size_t>(q)], spec.coords[static_cast<std::size_t>(q)]);
    }
  }
}

TEST(DeviceSerialization, RoundTrippedDeviceBuilds) {
  std::stringstream ss;
  write_device(make_falcon27(), ss);
  const auto nl = build_netlist(read_device(ss));
  EXPECT_EQ(nl.qubit_count(), 27u);
  EXPECT_EQ(nl.edge_count(), 28u);
}

TEST(DeviceSerialization, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(read_device(empty), std::runtime_error);
  std::stringstream wrong("qlay 1\n");
  EXPECT_THROW(read_device(wrong), std::runtime_error);
  std::stringstream bad_coupling("qdev 1\nname x\nqubits 2\ncoord 0 0 0\ncoord 1 1 0\n"
                                 "couplings 1\nc 0 5\n");
  EXPECT_THROW(read_device(bad_coupling), std::runtime_error);
}

TEST(DeviceSerialization, CommentsAndBlankLinesIgnored) {
  std::stringstream ss("# device file\n\nqdev 1\nname mini\nqubits 2\n# coords\ncoord 0 0 0\n"
                       "coord 1 2 0\ncouplings 1\nc 0 1\n");
  const auto spec = read_device(ss);
  EXPECT_EQ(spec.name, "mini");
  EXPECT_EQ(spec.qubit_count, 2);
}

TEST(LayoutSerialization, RoundTripLegalizedLayout) {
  QuantumNetlist nl = build_netlist(make_falcon27());
  PipelineOptions opt;
  opt.legalizer = LegalizerKind::kQgdp;
  opt.run_detailed = true;
  Pipeline(opt).run(nl);

  std::stringstream ss;
  write_layout(nl, ss);
  const QuantumNetlist back = read_layout(ss);

  EXPECT_EQ(back.name(), nl.name());
  EXPECT_EQ(back.die(), nl.die());
  ASSERT_EQ(back.qubit_count(), nl.qubit_count());
  ASSERT_EQ(back.edge_count(), nl.edge_count());
  ASSERT_EQ(back.block_count(), nl.block_count());
  for (std::size_t i = 0; i < nl.qubit_count(); ++i) {
    const auto& a = nl.qubit(static_cast<int>(i));
    const auto& b = back.qubit(static_cast<int>(i));
    EXPECT_EQ(a.pos, b.pos);
    EXPECT_DOUBLE_EQ(a.frequency, b.frequency);
    EXPECT_DOUBLE_EQ(a.width, b.width);
  }
  for (std::size_t i = 0; i < nl.block_count(); ++i) {
    EXPECT_EQ(nl.block(static_cast<int>(i)).pos, back.block(static_cast<int>(i)).pos);
    EXPECT_EQ(nl.block(static_cast<int>(i)).edge, back.block(static_cast<int>(i)).edge);
  }
  // The reloaded layout audits identically.
  EXPECT_TRUE(audit_layout(back).clean());
}

TEST(LayoutSerialization, FileRoundTrip) {
  const std::string path = "/tmp/qgdp_serialization_test.qlay";
  QuantumNetlist nl = build_netlist(make_grid_device());
  write_layout_file(nl, path);
  const QuantumNetlist back = read_layout_file(path);
  EXPECT_EQ(back.qubit_count(), nl.qubit_count());
  std::remove(path.c_str());
}

TEST(LayoutSerialization, RejectsCorruptStream) {
  QuantumNetlist nl = build_netlist(make_grid_device());
  std::stringstream ss;
  write_layout(nl, ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);  // truncate
  std::stringstream half(text);
  EXPECT_THROW(read_layout(half), std::runtime_error);
}

}  // namespace
}  // namespace qgdp
