// Tests for .qdev / .qlay serialization round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/pipeline.h"
#include "io/serialization.h"
#include "metrics/audit.h"
#include "netlist/netlist_builder.h"
#include "netlist/topologies.h"

namespace qgdp {
namespace {

TEST(DeviceSerialization, RoundTripAllTopologies) {
  for (const auto& spec : all_paper_topologies()) {
    std::stringstream ss;
    write_device(spec, ss);
    const DeviceSpec back = read_device(ss);
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.qubit_count, spec.qubit_count);
    ASSERT_EQ(back.couplings.size(), spec.couplings.size());
    for (std::size_t i = 0; i < spec.couplings.size(); ++i) {
      EXPECT_EQ(back.couplings[i], spec.couplings[i]);
    }
    for (int q = 0; q < spec.qubit_count; ++q) {
      EXPECT_EQ(back.coords[static_cast<std::size_t>(q)], spec.coords[static_cast<std::size_t>(q)]);
    }
  }
}

TEST(DeviceSerialization, RoundTrippedDeviceBuilds) {
  std::stringstream ss;
  write_device(make_falcon27(), ss);
  const auto nl = build_netlist(read_device(ss));
  EXPECT_EQ(nl.qubit_count(), 27u);
  EXPECT_EQ(nl.edge_count(), 28u);
}

TEST(DeviceSerialization, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(read_device(empty), std::runtime_error);
  std::stringstream wrong("qlay 1\n");
  EXPECT_THROW(read_device(wrong), std::runtime_error);
  std::stringstream bad_coupling("qdev 1\nname x\nqubits 2\ncoord 0 0 0\ncoord 1 1 0\n"
                                 "couplings 1\nc 0 5\n");
  EXPECT_THROW(read_device(bad_coupling), std::runtime_error);
}

TEST(DeviceSerialization, CommentsAndBlankLinesIgnored) {
  std::stringstream ss("# device file\n\nqdev 1\nname mini\nqubits 2\n# coords\ncoord 0 0 0\n"
                       "coord 1 2 0\ncouplings 1\nc 0 1\n");
  const auto spec = read_device(ss);
  EXPECT_EQ(spec.name, "mini");
  EXPECT_EQ(spec.qubit_count, 2);
}

TEST(LayoutSerialization, RoundTripLegalizedLayout) {
  QuantumNetlist nl = build_netlist(make_falcon27());
  PipelineOptions opt;
  opt.legalizer = LegalizerKind::kQgdp;
  opt.run_detailed = true;
  Pipeline(opt).run(nl);

  std::stringstream ss;
  write_layout(nl, ss);
  const QuantumNetlist back = read_layout(ss);

  EXPECT_EQ(back.name(), nl.name());
  EXPECT_EQ(back.die(), nl.die());
  ASSERT_EQ(back.qubit_count(), nl.qubit_count());
  ASSERT_EQ(back.edge_count(), nl.edge_count());
  ASSERT_EQ(back.block_count(), nl.block_count());
  for (std::size_t i = 0; i < nl.qubit_count(); ++i) {
    const auto& a = nl.qubit(static_cast<int>(i));
    const auto& b = back.qubit(static_cast<int>(i));
    EXPECT_EQ(a.pos, b.pos);
    EXPECT_DOUBLE_EQ(a.frequency, b.frequency);
    EXPECT_DOUBLE_EQ(a.width, b.width);
  }
  for (std::size_t i = 0; i < nl.block_count(); ++i) {
    EXPECT_EQ(nl.block(static_cast<int>(i)).pos, back.block(static_cast<int>(i)).pos);
    EXPECT_EQ(nl.block(static_cast<int>(i)).edge, back.block(static_cast<int>(i)).edge);
  }
  // The reloaded layout audits identically.
  EXPECT_TRUE(audit_layout(back).clean());
}

TEST(LayoutSerialization, FileRoundTrip) {
  const std::string path = "/tmp/qgdp_serialization_test.qlay";
  QuantumNetlist nl = build_netlist(make_grid_device());
  write_layout_file(nl, path);
  const QuantumNetlist back = read_layout_file(path);
  EXPECT_EQ(back.qubit_count(), nl.qubit_count());
  std::remove(path.c_str());
}

TEST(LayoutSerialization, ExtremeMagnitudesRoundTripExactly) {
  // setprecision(17) must carry denormal and near-overflow doubles
  // through the text format bit for bit.
  const double denormal = 5e-324;                     // smallest positive double
  const double tiny = 2.2250738585072014e-308;        // smallest normal
  const double huge = 1e308;
  QuantumNetlist nl;
  nl.set_name("extremes");
  nl.set_die(Rect{-huge, -huge, huge, huge});
  nl.add_qubit(Point{denormal, -denormal}, tiny, huge, 1.0 / 3.0);
  nl.add_qubit(Point{huge, -huge}, 1.0, 1.0, denormal);
  nl.add_edge(0, 1, tiny, huge, denormal);

  std::stringstream ss;
  write_layout(nl, ss);
  const QuantumNetlist back = read_layout(ss);
  EXPECT_EQ(back.die(), nl.die());
  EXPECT_EQ(back.qubit(0).pos.x, denormal);
  EXPECT_EQ(back.qubit(0).pos.y, -denormal);
  EXPECT_EQ(back.qubit(0).width, tiny);
  EXPECT_EQ(back.qubit(0).height, huge);
  EXPECT_EQ(back.qubit(0).frequency, 1.0 / 3.0);
  EXPECT_EQ(back.qubit(1).frequency, denormal);
  EXPECT_EQ(back.edge(0).frequency, tiny);
  EXPECT_EQ(back.edge(0).wire_length, huge);
  EXPECT_EQ(back.edge(0).padding, denormal);
}

TEST(LayoutSerialization, EmptyNetlistRoundTrips) {
  QuantumNetlist nl;  // zero qubits, edges, blocks
  std::stringstream ss;
  write_layout(nl, ss);
  const QuantumNetlist back = read_layout(ss);
  EXPECT_EQ(back.qubit_count(), 0u);
  EXPECT_EQ(back.edge_count(), 0u);
  EXPECT_EQ(back.block_count(), 0u);
}

TEST(LayoutSerialization, RejectsNonFiniteTokensWithTypedError) {
  // NaN/Inf must surface as parse errors (runtime_error), never as a
  // silent zero or a crash — whether in the die line or a qubit line.
  const std::string header = "qlay 1\nname t\n";
  std::stringstream nan_die(header + "die 0 0 nan 8\nqubits 0\nedges 0\nblocks 0\n");
  EXPECT_THROW(read_layout(nan_die), std::runtime_error);
  std::stringstream inf_qubit(header +
                              "die 0 0 8 8\nqubits 1\nq 0 inf 0 1 1 5\nedges 0\nblocks 0\n");
  EXPECT_THROW(read_layout(inf_qubit), std::runtime_error);
  std::stringstream neg_inf(header +
                            "die 0 0 8 8\nqubits 1\nq 0 0 -inf 1 1 5\nedges 0\nblocks 0\n");
  EXPECT_THROW(read_layout(neg_inf), std::runtime_error);
}

TEST(LayoutSerialization, RejectsHostileCountsAndEndpoints) {
  const std::string header = "qlay 1\nname t\ndie 0 0 8 8\n";
  // An absurd count line must be rejected before any allocation loop.
  std::stringstream absurd(header + "qubits 99999999999999\n");
  EXPECT_THROW(read_layout(absurd), std::runtime_error);
  std::stringstream negative(header + "qubits -3\n");
  EXPECT_THROW(read_layout(negative), std::runtime_error);
  // Edge endpoints outside the declared qubit range are a parse error,
  // not an out-of-bounds write into the incidence lists.
  std::stringstream bad_edge(header +
                             "qubits 1\nq 0 1 1 1 1 5\nedges 1\ne 0 0 7 5 1 0 0\nblocks 0\n");
  EXPECT_THROW(read_layout(bad_edge), std::runtime_error);
  // A negative per-edge block count must not reach partition_edge.
  std::stringstream neg_blocks(header +
                               "qubits 2\nq 0 1 1 1 1 5\nq 1 3 3 1 1 5\n"
                               "edges 1\ne 0 0 1 5 1 0 -2\nblocks 0\n");
  EXPECT_THROW(read_layout(neg_blocks), std::runtime_error);
}

TEST(DeviceSerialization, RejectsDegenerateAndNonFiniteDevices) {
  std::stringstream zero_qubits("qdev 1\nname x\nqubits 0\ncouplings 0\n");
  EXPECT_THROW(read_device(zero_qubits), std::runtime_error);
  std::stringstream nan_coord("qdev 1\nname x\nqubits 1\ncoord 0 nan 0\ncouplings 0\n");
  EXPECT_THROW(read_device(nan_coord), std::runtime_error);
  std::stringstream absurd("qdev 1\nname x\nqubits 88888888888888888\n");
  EXPECT_THROW(read_device(absurd), std::runtime_error);
}

TEST(LayoutSerialization, RejectsCorruptStream) {
  QuantumNetlist nl = build_netlist(make_grid_device());
  std::stringstream ss;
  write_layout(nl, ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);  // truncate
  std::stringstream half(text);
  EXPECT_THROW(read_layout(half), std::runtime_error);
}

}  // namespace
}  // namespace qgdp
