// Serving subsystem tests: the framed wire codec (socket-independent),
// and the qgdpd daemon end to end over loopback TCP — cold/warm place
// byte-identity through the content-addressed cache, ECO edits matching
// a local IncrementalLegalizer run bit for bit, protocol error paths,
// and the stats/shutdown lifecycle.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/incremental.h"
#include "core/pipeline.h"
#include "io/serialization.h"
#include "metrics/audit.h"
#include "netlist/netlist_builder.h"
#include "netlist/topologies.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/qgdpd.h"

namespace qgdp {
namespace {

using namespace qgdp::server;

// ---- framing ---------------------------------------------------------

TEST(Protocol, FrameRoundTrip) {
  const std::string payload = "topology Grid\n\nbody bytes \x01\x02";
  const std::string frame = encode_frame(FrameType::kPlaceRequest, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderSize + payload.size());
  const auto header =
      decode_frame_header(reinterpret_cast<const unsigned char*>(frame.data()));
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->type, FrameType::kPlaceRequest);
  EXPECT_EQ(header->length, payload.size());
  EXPECT_EQ(frame.substr(kFrameHeaderSize), payload);
}

TEST(Protocol, RejectsMalformedHeaders) {
  const std::string good = encode_frame(FrameType::kStatsRequest, "");
  unsigned char h[kFrameHeaderSize];
  auto with = [&](int at, unsigned char value) {
    std::memcpy(h, good.data(), kFrameHeaderSize);
    h[at] = value;
    return decode_frame_header(h);
  };
  EXPECT_TRUE(with(0, 'Q').has_value());
  EXPECT_FALSE(with(0, 'X').has_value());             // bad magic
  EXPECT_FALSE(with(2, kProtocolVersion + 1).has_value());  // bad version
  EXPECT_FALSE(with(3, 0x7F).has_value());            // unknown type
  EXPECT_FALSE(with(4, 0xFF).has_value());            // > kMaxPayloadBytes
}

// ---- request/reply codecs -------------------------------------------

TEST(Protocol, PlaceRequestRoundTrips) {
  PlaceRequest req;
  req.topology = "heavyhex-23x39";
  req.flow = "q-abacus";
  req.seed = 7;
  req.run_detailed = true;
  req.gp_levels = 3;
  req.use_cache = false;
  req.want_layout = false;
  const auto back = parse_place_request(format_place_request(req));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->topology, req.topology);
  EXPECT_EQ(back->flow, req.flow);
  EXPECT_EQ(back->seed, req.seed);
  EXPECT_EQ(back->run_detailed, req.run_detailed);
  EXPECT_EQ(back->gp_levels, req.gp_levels);
  EXPECT_EQ(back->use_cache, req.use_cache);
  EXPECT_EQ(back->want_layout, req.want_layout);
  EXPECT_FALSE(parse_place_request("flow qgdp\n\n").has_value());  // no topology
}

TEST(Protocol, EcoRequestRoundTripsAtFullPrecision) {
  EcoRequest req;
  req.policy = "baa";
  req.want_layout = true;
  req.moves = {{3, 1.0 / 3.0, 2.0 / 7.0}, {12, -4.25, 9.5}};
  const auto back = parse_eco_request(format_eco_request(req));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->policy, "baa");
  EXPECT_TRUE(back->want_layout);
  ASSERT_EQ(back->moves.size(), 2u);
  EXPECT_EQ(back->moves[0].qubit, 3);
  EXPECT_EQ(back->moves[0].x, 1.0 / 3.0);  // exact: setprecision(17)
  EXPECT_EQ(back->moves[0].y, 2.0 / 7.0);
  EXPECT_EQ(back->moves[1].qubit, 12);

  EXPECT_FALSE(parse_eco_request("policy abacus\n\n").has_value());  // no moves
  EXPECT_FALSE(parse_eco_request("policy tetris\nmove 0 1 1\n\n").has_value());
  EcoRequest too_many;
  too_many.moves.assign(kMaxEcoMoves + 1, {0, 0.0, 0.0});
  EXPECT_FALSE(parse_eco_request(format_eco_request(too_many)).has_value());
}

TEST(Protocol, RepliesRoundTripWithBody) {
  PlaceReply place;
  place.status = StatusCode::kOk;
  place.cached = true;
  place.cache_key = hex64(0xdeadbeefULL);
  place.layout_hash = hex64(fnv1a64(std::string("qlay")));
  place.qubits = 1117;
  place.blocks = 4242;
  place.place_ms = 0.125;
  place.layout = "qlay 1\nname x\n";  // body carried verbatim
  const auto p = parse_place_reply(format_place_reply(place));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->status, StatusCode::kOk);
  EXPECT_TRUE(p->cached);
  EXPECT_EQ(p->cache_key, place.cache_key);
  EXPECT_EQ(p->layout_hash, place.layout_hash);
  EXPECT_EQ(p->qubits, 1117u);
  EXPECT_EQ(p->blocks, 4242u);
  EXPECT_EQ(p->place_ms, 0.125);
  EXPECT_EQ(p->layout, place.layout);

  EcoReply eco;
  eco.status = StatusCode::kEcoFailed;
  eco.success = false;
  eco.ripped_blocks = 9;
  eco.window[0] = -1.5;
  eco.window[3] = 22.25;
  const auto e = parse_eco_reply(format_eco_reply(eco));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->status, StatusCode::kEcoFailed);
  EXPECT_FALSE(e->success);
  EXPECT_EQ(e->ripped_blocks, 9);
  EXPECT_EQ(e->window[0], -1.5);
  EXPECT_EQ(e->window[3], 22.25);

  StatsReply stats;
  stats.cache_hits = 17;
  stats.cache_bytes = 123456;
  const auto s = parse_stats_reply(format_stats_reply(stats));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->cache_hits, 17u);
  EXPECT_EQ(s->cache_bytes, 123456u);

  ErrorReply err;
  err.status = StatusCode::kUnknownTopology;
  err.message = "no such device";
  const auto r = parse_error_reply(format_error_reply(err));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, StatusCode::kUnknownTopology);
  EXPECT_EQ(r->message, "no such device");
}

// ---- daemon end to end ----------------------------------------------

class QgdpdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    QgdpdOptions opt;
    opt.port = 0;  // ephemeral
    daemon_ = std::make_unique<Qgdpd>(opt);
    std::string error;
    ASSERT_TRUE(daemon_->start(&error)) << error;
  }
  void TearDown() override { daemon_->stop(); }

  [[nodiscard]] QgdpdClient connect() {
    QgdpdClient client;
    std::string error;
    EXPECT_TRUE(client.connect("127.0.0.1", daemon_->port(), &error)) << error;
    return client;
  }

  std::unique_ptr<Qgdpd> daemon_;
};

TEST_F(QgdpdTest, ColdThenWarmPlaceIsByteIdentical) {
  PlaceRequest req;
  req.topology = "Grid";

  QgdpdClient a = connect();
  std::string error;
  const auto cold = a.place(req, &error);
  ASSERT_TRUE(cold.has_value()) << error;
  EXPECT_EQ(cold->status, StatusCode::kOk);
  EXPECT_FALSE(cold->cached);
  EXPECT_EQ(cold->qubits, 25u);
  ASSERT_FALSE(cold->layout.empty());
  EXPECT_EQ(cold->layout_hash, hex64(fnv1a64(cold->layout)));

  // The cold reply must match a local run of the identical pipeline.
  QuantumNetlist nl = build_netlist(make_grid_device());
  PipelineOptions popt;
  (void)Pipeline(popt).run(nl);
  std::ostringstream local;
  write_layout(nl, local);
  EXPECT_EQ(cold->layout, local.str());

  // A second session gets the cached bytes, verbatim.
  QgdpdClient b = connect();
  const auto warm = b.place(req, &error);
  ASSERT_TRUE(warm.has_value()) << error;
  EXPECT_TRUE(warm->cached);
  EXPECT_EQ(warm->cache_key, cold->cache_key);
  EXPECT_EQ(warm->layout, cold->layout);
  EXPECT_EQ(warm->layout_hash, cold->layout_hash);
  EXPECT_EQ(warm->blocks, cold->blocks);

  // cache=0 bypasses the cache and recomputes (still deterministic).
  PlaceRequest uncached = req;
  uncached.use_cache = false;
  const auto recomputed = b.place(uncached, &error);
  ASSERT_TRUE(recomputed.has_value()) << error;
  EXPECT_FALSE(recomputed->cached);
  EXPECT_EQ(recomputed->layout, cold->layout);

  // Different seed → different cache key (content-addressing).
  PlaceRequest other_seed = req;
  other_seed.seed = 2;
  const auto other = b.place(other_seed, &error);
  ASSERT_TRUE(other.has_value()) << error;
  EXPECT_FALSE(other->cached);
  EXPECT_NE(other->cache_key, cold->cache_key);
}

TEST_F(QgdpdTest, EcoMatchesLocalIncrementalLegalizer) {
  // Local reference: the same pipeline, then the same edits applied
  // with IncrementalLegalizer directly.
  QuantumNetlist nl = build_netlist(make_grid_device());
  PipelineOptions popt;
  const auto out = Pipeline(popt).run(nl);
  const double spacing = out.stats.qubit.spacing_used;

  const Point p0 = nl.qubit(3).pos;
  const Point p1 = nl.qubit(17).pos;
  EcoRequest eco;
  eco.want_layout = true;
  eco.moves = {{3, p0.x + 2.0, p0.y + 1.0}, {17, p1.x - 1.0, p1.y + 2.0}};

  BinGrid grid = IncrementalLegalizer::grid_for(nl);
  EcoOptions eopt;
  eopt.min_spacing = spacing;
  eopt.policy = EcoOptions::BlockPolicy::kAbacusWindow;
  std::vector<QubitMove> moves;
  for (const EcoMove& m : eco.moves) moves.push_back({m.qubit, Point{m.x, m.y}});
  const EcoResult local = IncrementalLegalizer(eopt).move_qubits(nl, grid, moves);
  ASSERT_TRUE(local.success);
  std::ostringstream local_qlay;
  write_layout(nl, local_qlay);

  // Served path: place cold, then the same eco batch.
  QgdpdClient client = connect();
  std::string error;
  PlaceRequest place;
  place.topology = "Grid";
  place.want_layout = false;
  const auto placed = client.place(place, &error);
  ASSERT_TRUE(placed.has_value()) << error;

  const auto served = client.eco(eco, &error);
  ASSERT_TRUE(served.has_value()) << error;
  EXPECT_EQ(served->status, StatusCode::kOk);
  EXPECT_TRUE(served->success);
  EXPECT_EQ(served->window_violations, 0);
  EXPECT_EQ(served->ripped_blocks, local.ripped_blocks);
  EXPECT_EQ(served->replaced_blocks, local.replaced_blocks);
  EXPECT_EQ(served->edges_touched, local.edges_touched);
  // Bit-identical to the from-scratch local re-legalization.
  EXPECT_EQ(served->layout, local_qlay.str());
  EXPECT_EQ(served->layout_hash, hex64(fnv1a64(local_qlay.str())));

  // The served layout is audit-clean under the flow's spacing rule.
  std::istringstream is(served->layout);
  const QuantumNetlist reread = read_layout(is);
  AuditOptions aopt;
  aopt.qubit_min_spacing = spacing;
  EXPECT_TRUE(audit_layout(reread, aopt).clean());

  // A warm session materializes the cached layout lazily and serves
  // the identical eco result.
  QgdpdClient warm = connect();
  const auto warm_place = warm.place(place, &error);
  ASSERT_TRUE(warm_place.has_value()) << error;
  EXPECT_TRUE(warm_place->cached);
  const auto warm_eco = warm.eco(eco, &error);
  ASSERT_TRUE(warm_eco.has_value()) << error;
  EXPECT_EQ(warm_eco->layout, local_qlay.str());
}

TEST_F(QgdpdTest, RequestErrorsAreTyped) {
  QgdpdClient client = connect();
  std::string error;

  PlaceRequest bad_topology;
  bad_topology.topology = "no-such-device";
  EXPECT_FALSE(client.place(bad_topology, &error).has_value());
  EXPECT_NE(error.find("unknown_topology"), std::string::npos) << error;

  PlaceRequest bad_flow;
  bad_flow.topology = "Grid";
  bad_flow.flow = "annealer";
  EXPECT_FALSE(client.place(bad_flow, &error).has_value());
  EXPECT_NE(error.find("unknown_flow"), std::string::npos) << error;

  EcoRequest premature;
  premature.moves = {{0, 1.0, 1.0}};
  EXPECT_FALSE(client.eco(premature, &error).has_value());
  EXPECT_NE(error.find("no_layout"), std::string::npos) << error;

  // The connection survives typed errors and still serves requests.
  const auto stats = client.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_GE(stats->served_place, 2u);
}

TEST_F(QgdpdTest, OverConstrainedEcoIsSolverInfeasible) {
  QgdpdClient client = connect();
  std::string error;
  PlaceRequest place;
  place.topology = "Grid";
  place.want_layout = true;
  const auto placed = client.place(place, &error);
  ASSERT_TRUE(placed.has_value()) << error;
  const std::string before = placed->layout;

  // A target far outside the die has no legal spot within the search
  // radius: the batch is over-constrained and must come back as the
  // typed solver_infeasible error frame, NOT as a served layout from
  // a failed solve.
  EcoRequest impossible;
  impossible.want_layout = true;
  impossible.moves = {{0, 1e6, 1e6}};
  EXPECT_FALSE(client.eco(impossible, &error).has_value());
  EXPECT_NE(error.find("solver_infeasible"), std::string::npos) << error;

  // The session layout is untouched and the connection still serves:
  // a normal follow-up eco on the same session must succeed.
  std::istringstream is(before);
  const QuantumNetlist nl = read_layout(is);
  const Point p0 = nl.qubit(0).pos;
  EcoRequest fine;
  fine.want_layout = true;
  fine.moves = {{0, p0.x + 1.0, p0.y}};
  const auto served = client.eco(fine, &error);
  ASSERT_TRUE(served.has_value()) << error;
  EXPECT_EQ(served->status, StatusCode::kOk);
  EXPECT_TRUE(served->success);
}

TEST_F(QgdpdTest, StatsAndShutdownLifecycle) {
  QgdpdClient client = connect();
  std::string error;
  PlaceRequest req;
  req.topology = "Grid";
  req.want_layout = false;
  ASSERT_TRUE(client.place(req, &error).has_value()) << error;
  ASSERT_TRUE(client.place(req, &error).has_value()) << error;  // same session, warm

  const auto stats = client.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->served_place, 2u);
  EXPECT_EQ(stats->cache_hits, 1u);
  EXPECT_EQ(stats->cache_misses, 1u);
  EXPECT_EQ(stats->cache_entries, 1u);
  EXPECT_GT(stats->cache_bytes, 0u);
  EXPECT_GE(stats->sessions, 1u);

  const auto final_stats = client.shutdown_server(&error);
  ASSERT_TRUE(final_stats.has_value()) << error;
  EXPECT_GE(final_stats->served_place, 2u);
  daemon_->wait();  // drains promptly once shutdown was requested
  EXPECT_FALSE(daemon_->running());
}

}  // namespace
}  // namespace qgdp
