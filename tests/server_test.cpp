// Serving subsystem tests: the framed wire codec (socket-independent),
// and the qgdpd daemon end to end over loopback TCP — cold/warm place
// byte-identity through the content-addressed cache, ECO edits matching
// a local IncrementalLegalizer run bit for bit, protocol error paths,
// the stats/shutdown lifecycle, and the hostile-client matrix: idle and
// slowloris eviction, malformed payloads, mid-reply disconnects,
// connect/close churn, and overload shedding at both admission caps.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/incremental.h"
#include "core/pipeline.h"
#include "io/serialization.h"
#include "metrics/audit.h"
#include "netlist/netlist_builder.h"
#include "netlist/topologies.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/qgdpd.h"

namespace qgdp {
namespace {

using namespace qgdp::server;

// ---- framing ---------------------------------------------------------

TEST(Protocol, FrameRoundTrip) {
  const std::string payload = "topology Grid\n\nbody bytes \x01\x02";
  const std::string frame = encode_frame(FrameType::kPlaceRequest, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderSize + payload.size());
  const auto header =
      decode_frame_header(reinterpret_cast<const unsigned char*>(frame.data()));
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->type, FrameType::kPlaceRequest);
  EXPECT_EQ(header->length, payload.size());
  EXPECT_EQ(frame.substr(kFrameHeaderSize), payload);
}

TEST(Protocol, RejectsMalformedHeaders) {
  const std::string good = encode_frame(FrameType::kStatsRequest, "");
  unsigned char h[kFrameHeaderSize];
  auto with = [&](int at, unsigned char value) {
    std::memcpy(h, good.data(), kFrameHeaderSize);
    h[at] = value;
    return decode_frame_header(h);
  };
  EXPECT_TRUE(with(0, 'Q').has_value());
  EXPECT_FALSE(with(0, 'X').has_value());             // bad magic
  EXPECT_FALSE(with(2, kProtocolVersion + 1).has_value());  // bad version
  EXPECT_FALSE(with(3, 0x7F).has_value());            // unknown type
  EXPECT_FALSE(with(4, 0xFF).has_value());            // > kMaxPayloadBytes
}

// ---- request/reply codecs -------------------------------------------

TEST(Protocol, PlaceRequestRoundTrips) {
  PlaceRequest req;
  req.topology = "heavyhex-23x39";
  req.flow = "q-abacus";
  req.seed = 7;
  req.run_detailed = true;
  req.gp_levels = 3;
  req.use_cache = false;
  req.want_layout = false;
  const auto back = parse_place_request(format_place_request(req));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->topology, req.topology);
  EXPECT_EQ(back->flow, req.flow);
  EXPECT_EQ(back->seed, req.seed);
  EXPECT_EQ(back->run_detailed, req.run_detailed);
  EXPECT_EQ(back->gp_levels, req.gp_levels);
  EXPECT_EQ(back->use_cache, req.use_cache);
  EXPECT_EQ(back->want_layout, req.want_layout);
  EXPECT_FALSE(parse_place_request("flow qgdp\n\n").has_value());  // no topology
}

TEST(Protocol, EcoRequestRoundTripsAtFullPrecision) {
  EcoRequest req;
  req.policy = "baa";
  req.want_layout = true;
  req.moves = {{3, 1.0 / 3.0, 2.0 / 7.0}, {12, -4.25, 9.5}};
  const auto back = parse_eco_request(format_eco_request(req));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->policy, "baa");
  EXPECT_TRUE(back->want_layout);
  ASSERT_EQ(back->moves.size(), 2u);
  EXPECT_EQ(back->moves[0].qubit, 3);
  EXPECT_EQ(back->moves[0].x, 1.0 / 3.0);  // exact: setprecision(17)
  EXPECT_EQ(back->moves[0].y, 2.0 / 7.0);
  EXPECT_EQ(back->moves[1].qubit, 12);

  EXPECT_FALSE(parse_eco_request("policy abacus\n\n").has_value());  // no moves
  EXPECT_FALSE(parse_eco_request("policy tetris\nmove 0 1 1\n\n").has_value());
  EcoRequest too_many;
  too_many.moves.assign(kMaxEcoMoves + 1, {0, 0.0, 0.0});
  EXPECT_FALSE(parse_eco_request(format_eco_request(too_many)).has_value());
}

TEST(Protocol, RepliesRoundTripWithBody) {
  PlaceReply place;
  place.status = StatusCode::kOk;
  place.cached = true;
  place.cache_key = hex64(0xdeadbeefULL);
  place.layout_hash = hex64(fnv1a64(std::string("qlay")));
  place.qubits = 1117;
  place.blocks = 4242;
  place.place_ms = 0.125;
  place.layout = "qlay 1\nname x\n";  // body carried verbatim
  const auto p = parse_place_reply(format_place_reply(place));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->status, StatusCode::kOk);
  EXPECT_TRUE(p->cached);
  EXPECT_EQ(p->cache_key, place.cache_key);
  EXPECT_EQ(p->layout_hash, place.layout_hash);
  EXPECT_EQ(p->qubits, 1117u);
  EXPECT_EQ(p->blocks, 4242u);
  EXPECT_EQ(p->place_ms, 0.125);
  EXPECT_EQ(p->layout, place.layout);

  EcoReply eco;
  eco.status = StatusCode::kEcoFailed;
  eco.success = false;
  eco.ripped_blocks = 9;
  eco.window[0] = -1.5;
  eco.window[3] = 22.25;
  const auto e = parse_eco_reply(format_eco_reply(eco));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->status, StatusCode::kEcoFailed);
  EXPECT_FALSE(e->success);
  EXPECT_EQ(e->ripped_blocks, 9);
  EXPECT_EQ(e->window[0], -1.5);
  EXPECT_EQ(e->window[3], 22.25);

  StatsReply stats;
  stats.cache_hits = 17;
  stats.cache_bytes = 123456;
  stats.worker_crashes = 3;
  stats.worker_oom_kills = 2;
  stats.worker_timeouts = 1;
  stats.hedges_launched = 9;
  stats.hedge_wins = 4;
  stats.workers_recycled = 6;
  const auto s = parse_stats_reply(format_stats_reply(stats));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->cache_hits, 17u);
  EXPECT_EQ(s->cache_bytes, 123456u);
  EXPECT_EQ(s->worker_crashes, 3u);
  EXPECT_EQ(s->worker_oom_kills, 2u);
  EXPECT_EQ(s->worker_timeouts, 1u);
  EXPECT_EQ(s->hedges_launched, 9u);
  EXPECT_EQ(s->hedge_wins, 4u);
  EXPECT_EQ(s->workers_recycled, 6u);

  ErrorReply err;
  err.status = StatusCode::kUnknownTopology;
  err.message = "no such device";
  const auto r = parse_error_reply(format_error_reply(err));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, StatusCode::kUnknownTopology);
  EXPECT_EQ(r->message, "no such device");
}

TEST(Protocol, EmptyRequestCodecAndRetryClassification) {
  EXPECT_EQ(format_empty_request(), "\n");
  EXPECT_TRUE(parse_empty_request(format_empty_request()));
  EXPECT_FALSE(parse_empty_request(""));
  EXPECT_FALSE(parse_empty_request("key value\n\n"));
  EXPECT_FALSE(parse_empty_request("\n\n"));

  EXPECT_EQ(to_string(StatusCode::kOverloaded), "overloaded");
  EXPECT_EQ(to_string(StatusCode::kTimeout), "timeout");
  EXPECT_EQ(to_string(StatusCode::kWorkerCrashed), "worker_crashed");
  EXPECT_EQ(to_string(StatusCode::kResourceExhausted), "resource_exhausted");
  EXPECT_TRUE(is_retryable(StatusCode::kOverloaded));
  EXPECT_TRUE(is_retryable(StatusCode::kTimeout));
  EXPECT_TRUE(is_retryable(StatusCode::kShuttingDown));
  // A crashed/starved worker is the run's failure, not the request's:
  // a retry lands on a fresh worker (or a warm cache) and may succeed.
  EXPECT_TRUE(is_retryable(StatusCode::kWorkerCrashed));
  EXPECT_TRUE(is_retryable(StatusCode::kResourceExhausted));
  EXPECT_FALSE(is_retryable(StatusCode::kOk));
  EXPECT_FALSE(is_retryable(StatusCode::kBadRequest));
  EXPECT_FALSE(is_retryable(StatusCode::kUnknownTopology));
  EXPECT_FALSE(is_retryable(StatusCode::kSolverInfeasible));
  EXPECT_FALSE(is_retryable(StatusCode::kInternalError));
}

TEST(Client, RetryBackoffIsDeterministicJitteredAndCapped) {
  RetryPolicy policy;
  policy.backoff_base_ms = 10;
  policy.backoff_max_ms = 200;
  policy.jitter_seed = 7;
  int prev_cap = 0;
  for (int attempt = 1; attempt <= 10; ++attempt) {
    const int cap = std::min(10 << (attempt - 1), 200);
    const int d = retry_backoff_ms(policy, attempt);
    // Jitter stays inside [cap/2, cap] and the schedule is pure.
    EXPECT_GE(d, cap / 2) << attempt;
    EXPECT_LE(d, cap) << attempt;
    EXPECT_EQ(d, retry_backoff_ms(policy, attempt)) << attempt;
    EXPECT_GE(cap, prev_cap);
    prev_cap = cap;
  }
  RetryPolicy other = policy;
  other.jitter_seed = 8;
  bool differs = false;
  for (int attempt = 1; attempt <= 10; ++attempt) {
    differs |= retry_backoff_ms(policy, attempt) != retry_backoff_ms(other, attempt);
  }
  EXPECT_TRUE(differs);  // the seed actually reaches the jitter
}

// ---- daemon end to end ----------------------------------------------

class QgdpdTest : public ::testing::Test {
 protected:
  void SetUp() override { restart(QgdpdOptions{}); }
  void TearDown() override { daemon_->stop(); }

  /// (Re)starts the daemon with `opt` on a fresh ephemeral port.
  void restart(QgdpdOptions opt) {
    if (daemon_) daemon_->stop();
    opt.port = 0;
    daemon_ = std::make_unique<Qgdpd>(opt);
    std::string error;
    ASSERT_TRUE(daemon_->start(&error)) << error;
  }

  [[nodiscard]] QgdpdClient connect() {
    QgdpdClient client;
    std::string error;
    EXPECT_TRUE(client.connect("127.0.0.1", daemon_->port(), &error)) << error;
    return client;
  }

  /// Raw TCP connection speaking bytes, not the client API — the
  /// hostile-client tests need to send garbage and half-frames. A 5 s
  /// receive timeout keeps a misbehaving daemon from hanging the test.
  [[nodiscard]] int raw_connect(int rcvbuf = 0) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    if (rcvbuf > 0) ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    timeval tv{5, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(daemon_->port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
    return fd;
  }

  static bool raw_send(int fd, const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t r = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (r <= 0) return false;
      sent += static_cast<std::size_t>(r);
    }
    return true;
  }

  struct RawFrame {
    FrameType type{FrameType::kErrorReply};
    std::string payload;
  };

  /// Blocking read of one complete frame; nullopt on EOF/timeout/bad
  /// header.
  static std::optional<RawFrame> raw_read_frame(int fd) {
    unsigned char header[kFrameHeaderSize];
    std::size_t got = 0;
    while (got < kFrameHeaderSize) {
      const ssize_t r = ::recv(fd, header + got, kFrameHeaderSize - got, 0);
      if (r <= 0) return std::nullopt;
      got += static_cast<std::size_t>(r);
    }
    const auto h = decode_frame_header(header);
    if (!h) return std::nullopt;
    RawFrame frame;
    frame.type = h->type;
    frame.payload.resize(h->length);
    std::size_t body = 0;
    while (body < frame.payload.size()) {
      const ssize_t r = ::recv(fd, frame.payload.data() + body, frame.payload.size() - body, 0);
      if (r <= 0) return std::nullopt;
      body += static_cast<std::size_t>(r);
    }
    return frame;
  }

  /// True when the next read is an orderly EOF.
  static bool raw_at_eof(int fd) {
    char c;
    return ::recv(fd, &c, 1, 0) == 0;
  }

  /// Reads one error frame and returns its status (kInternalError as a
  /// sentinel when no parseable error frame arrived).
  static StatusCode raw_error_status(int fd) {
    const auto frame = raw_read_frame(fd);
    if (!frame || frame->type != FrameType::kErrorReply) return StatusCode::kInternalError;
    const auto rep = parse_error_reply(frame->payload);
    return rep ? rep->status : StatusCode::kInternalError;
  }

  /// Polls until the session registry drains to `n` (daemon threads
  /// unwind asynchronously after a peer hangs up).
  void wait_active_sessions(std::size_t n, int deadline_ms = 5000) {
    const auto t0 = std::chrono::steady_clock::now();
    while (daemon_->active_sessions() != n) {
      const auto ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      ASSERT_LT(ms, deadline_ms) << "sessions stuck at " << daemon_->active_sessions();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  std::unique_ptr<Qgdpd> daemon_;
};

TEST_F(QgdpdTest, ColdThenWarmPlaceIsByteIdentical) {
  PlaceRequest req;
  req.topology = "Grid";

  QgdpdClient a = connect();
  std::string error;
  const auto cold = a.place(req, &error);
  ASSERT_TRUE(cold.has_value()) << error;
  EXPECT_EQ(cold->status, StatusCode::kOk);
  EXPECT_FALSE(cold->cached);
  EXPECT_EQ(cold->qubits, 25u);
  ASSERT_FALSE(cold->layout.empty());
  EXPECT_EQ(cold->layout_hash, hex64(fnv1a64(cold->layout)));

  // The cold reply must match a local run of the identical pipeline.
  QuantumNetlist nl = build_netlist(make_grid_device());
  PipelineOptions popt;
  (void)Pipeline(popt).run(nl);
  std::ostringstream local;
  write_layout(nl, local);
  EXPECT_EQ(cold->layout, local.str());

  // A second session gets the cached bytes, verbatim.
  QgdpdClient b = connect();
  const auto warm = b.place(req, &error);
  ASSERT_TRUE(warm.has_value()) << error;
  EXPECT_TRUE(warm->cached);
  EXPECT_EQ(warm->cache_key, cold->cache_key);
  EXPECT_EQ(warm->layout, cold->layout);
  EXPECT_EQ(warm->layout_hash, cold->layout_hash);
  EXPECT_EQ(warm->blocks, cold->blocks);

  // cache=0 bypasses the cache and recomputes (still deterministic).
  PlaceRequest uncached = req;
  uncached.use_cache = false;
  const auto recomputed = b.place(uncached, &error);
  ASSERT_TRUE(recomputed.has_value()) << error;
  EXPECT_FALSE(recomputed->cached);
  EXPECT_EQ(recomputed->layout, cold->layout);

  // Different seed → different cache key (content-addressing).
  PlaceRequest other_seed = req;
  other_seed.seed = 2;
  const auto other = b.place(other_seed, &error);
  ASSERT_TRUE(other.has_value()) << error;
  EXPECT_FALSE(other->cached);
  EXPECT_NE(other->cache_key, cold->cache_key);
}

TEST_F(QgdpdTest, EcoMatchesLocalIncrementalLegalizer) {
  // Local reference: the same pipeline, then the same edits applied
  // with IncrementalLegalizer directly.
  QuantumNetlist nl = build_netlist(make_grid_device());
  PipelineOptions popt;
  const auto out = Pipeline(popt).run(nl);
  const double spacing = out.stats.qubit.spacing_used;

  const Point p0 = nl.qubit(3).pos;
  const Point p1 = nl.qubit(17).pos;
  EcoRequest eco;
  eco.want_layout = true;
  eco.moves = {{3, p0.x + 2.0, p0.y + 1.0}, {17, p1.x - 1.0, p1.y + 2.0}};

  BinGrid grid = IncrementalLegalizer::grid_for(nl);
  EcoOptions eopt;
  eopt.min_spacing = spacing;
  eopt.policy = EcoOptions::BlockPolicy::kAbacusWindow;
  std::vector<QubitMove> moves;
  for (const EcoMove& m : eco.moves) moves.push_back({m.qubit, Point{m.x, m.y}});
  const EcoResult local = IncrementalLegalizer(eopt).move_qubits(nl, grid, moves);
  ASSERT_TRUE(local.success);
  std::ostringstream local_qlay;
  write_layout(nl, local_qlay);

  // Served path: place cold, then the same eco batch.
  QgdpdClient client = connect();
  std::string error;
  PlaceRequest place;
  place.topology = "Grid";
  place.want_layout = false;
  const auto placed = client.place(place, &error);
  ASSERT_TRUE(placed.has_value()) << error;

  const auto served = client.eco(eco, &error);
  ASSERT_TRUE(served.has_value()) << error;
  EXPECT_EQ(served->status, StatusCode::kOk);
  EXPECT_TRUE(served->success);
  EXPECT_EQ(served->window_violations, 0);
  EXPECT_EQ(served->ripped_blocks, local.ripped_blocks);
  EXPECT_EQ(served->replaced_blocks, local.replaced_blocks);
  EXPECT_EQ(served->edges_touched, local.edges_touched);
  // Bit-identical to the from-scratch local re-legalization.
  EXPECT_EQ(served->layout, local_qlay.str());
  EXPECT_EQ(served->layout_hash, hex64(fnv1a64(local_qlay.str())));

  // The served layout is audit-clean under the flow's spacing rule.
  std::istringstream is(served->layout);
  const QuantumNetlist reread = read_layout(is);
  AuditOptions aopt;
  aopt.qubit_min_spacing = spacing;
  EXPECT_TRUE(audit_layout(reread, aopt).clean());

  // A warm session materializes the cached layout lazily and serves
  // the identical eco result.
  QgdpdClient warm = connect();
  const auto warm_place = warm.place(place, &error);
  ASSERT_TRUE(warm_place.has_value()) << error;
  EXPECT_TRUE(warm_place->cached);
  const auto warm_eco = warm.eco(eco, &error);
  ASSERT_TRUE(warm_eco.has_value()) << error;
  EXPECT_EQ(warm_eco->layout, local_qlay.str());
}

TEST_F(QgdpdTest, ForkIsolationMatchesInProcessByteForByte) {
  // In-process reference first (the default daemon from SetUp).
  QgdpdClient ref = connect();
  std::string error;
  PlaceRequest place;
  place.topology = "Grid";
  const auto in_proc = ref.place(place, &error);
  ASSERT_TRUE(in_proc.has_value()) << error;
  ASSERT_FALSE(in_proc->layout.empty());

  std::istringstream is(in_proc->layout);
  QuantumNetlist nl = read_layout(is);
  const Point p3 = nl.qubit(3).pos;
  EcoRequest eco;
  eco.want_layout = true;
  eco.moves = {{3, p3.x + 2.0, p3.y + 1.0}};
  const auto eco_ref = ref.eco(eco, &error);
  ASSERT_TRUE(eco_ref.has_value()) << error;
  ASSERT_TRUE(eco_ref->success);

  // The same traffic against a fork-isolated daemon: every reply must
  // be byte-identical — the isolated path is an implementation detail,
  // never an observable one.
  QgdpdOptions opt;
  opt.isolation = Isolation::kFork;
  restart(opt);
  QgdpdClient iso = connect();
  const auto cold = iso.place(place, &error);
  ASSERT_TRUE(cold.has_value()) << error;
  EXPECT_FALSE(cold->cached);
  EXPECT_EQ(cold->cache_key, in_proc->cache_key);
  EXPECT_EQ(cold->layout, in_proc->layout);
  EXPECT_EQ(cold->layout_hash, in_proc->layout_hash);
  EXPECT_EQ(cold->blocks, in_proc->blocks);

  const auto eco_iso = iso.eco(eco, &error);
  ASSERT_TRUE(eco_iso.has_value()) << error;
  EXPECT_TRUE(eco_iso->success);
  EXPECT_EQ(eco_iso->layout, eco_ref->layout);
  EXPECT_EQ(eco_iso->layout_hash, eco_ref->layout_hash);
  EXPECT_EQ(eco_iso->ripped_blocks, eco_ref->ripped_blocks);

  // Warm hits under fork isolation serve the identical cached bytes.
  QgdpdClient warm = connect();
  const auto hit = warm.place(place, &error);
  ASSERT_TRUE(hit.has_value()) << error;
  EXPECT_TRUE(hit->cached);
  EXPECT_EQ(hit->layout, in_proc->layout);

  const auto stats = warm.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->worker_crashes, 0u);
  EXPECT_EQ(stats->internal_errors, 0u);
}

TEST_F(QgdpdTest, ForkIsolationCrashesAreTypedAndDoNotLeakAdmission) {
  FaultConfig fc;
  fc.crash_child_permille = 1000;  // every worker run dies by SIGSEGV
  FaultInjector faults{fc};
  QgdpdOptions opt;
  opt.isolation = Isolation::kFork;
  opt.max_inflight_places = 1;  // a leaked admission slot wedges the retry below
  opt.faults = &faults;
  restart(opt);

  PlaceRequest place;
  place.topology = "Grid";
  const std::string frame =
      encode_frame(FrameType::kPlaceRequest, format_place_request(place));
  for (int i = 0; i < 5; ++i) {
    const int fd = raw_connect();
    ASSERT_TRUE(raw_send(fd, frame));
    EXPECT_EQ(raw_error_status(fd), StatusCode::kWorkerCrashed) << "request " << i;
    ::close(fd);
  }
  wait_active_sessions(0);

  // Schedule suspended: the next cold place must be admitted (every
  // crashed run released its inflight slot) and must succeed.
  faults.arm(false);
  QgdpdClient client = connect();
  std::string error;
  const auto ok = client.place(place, &error);
  ASSERT_TRUE(ok.has_value()) << error;
  EXPECT_EQ(ok->status, StatusCode::kOk);
  ASSERT_FALSE(ok->layout.empty());

  // The worker tier's counters surface in stats, and none of the five
  // contained crashes was an internal error.
  const auto stats = client.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->worker_crashes, 5u);
  EXPECT_EQ(stats->workers_recycled, 5u);
  EXPECT_EQ(stats->worker_oom_kills, 0u);
  EXPECT_EQ(stats->internal_errors, 0u);

  daemon_->stop();  // before `faults` leaves scope
}

TEST_F(QgdpdTest, RequestErrorsAreTyped) {
  QgdpdClient client = connect();
  std::string error;

  PlaceRequest bad_topology;
  bad_topology.topology = "no-such-device";
  EXPECT_FALSE(client.place(bad_topology, &error).has_value());
  EXPECT_NE(error.find("unknown_topology"), std::string::npos) << error;

  PlaceRequest bad_flow;
  bad_flow.topology = "Grid";
  bad_flow.flow = "annealer";
  EXPECT_FALSE(client.place(bad_flow, &error).has_value());
  EXPECT_NE(error.find("unknown_flow"), std::string::npos) << error;

  EcoRequest premature;
  premature.moves = {{0, 1.0, 1.0}};
  EXPECT_FALSE(client.eco(premature, &error).has_value());
  EXPECT_NE(error.find("no_layout"), std::string::npos) << error;

  // The connection survives typed errors and still serves requests.
  const auto stats = client.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_GE(stats->served_place, 2u);
}

TEST_F(QgdpdTest, OutOfFabricEcoRejectedBeforeSolve) {
  QgdpdClient client = connect();
  std::string error;
  PlaceRequest place;
  place.topology = "Grid";
  place.want_layout = true;
  const auto placed = client.place(place, &error);
  ASSERT_TRUE(placed.has_value()) << error;
  const std::string before = placed->layout;

  // A target far outside the fabric is rejected by the validation
  // layer as bad_request — before the solver (or even the session's
  // lazy netlist materialization) is touched — and counted in
  // validation_rejects.
  EcoRequest impossible;
  impossible.want_layout = true;
  impossible.moves = {{0, 1e6, 1e6}};
  EXPECT_FALSE(client.eco(impossible, &error).has_value());
  EXPECT_NE(error.find("bad_request"), std::string::npos) << error;
  const auto stats = client.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->validation_rejects, 1u);

  // The session layout is untouched and the connection still serves:
  // a normal follow-up eco on the same session must succeed.
  std::istringstream is(before);
  const QuantumNetlist nl = read_layout(is);
  const Point p0 = nl.qubit(0).pos;
  EcoRequest fine;
  fine.want_layout = true;
  fine.moves = {{0, p0.x + 1.0, p0.y}};
  const auto served = client.eco(fine, &error);
  ASSERT_TRUE(served.has_value()) << error;
  EXPECT_EQ(served->status, StatusCode::kOk);
  EXPECT_TRUE(served->success);
}

TEST_F(QgdpdTest, StatsAndShutdownLifecycle) {
  QgdpdClient client = connect();
  std::string error;
  PlaceRequest req;
  req.topology = "Grid";
  req.want_layout = false;
  ASSERT_TRUE(client.place(req, &error).has_value()) << error;
  ASSERT_TRUE(client.place(req, &error).has_value()) << error;  // same session, warm

  const auto stats = client.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->served_place, 2u);
  EXPECT_EQ(stats->cache_hits, 1u);
  EXPECT_EQ(stats->cache_misses, 1u);
  EXPECT_EQ(stats->cache_entries, 1u);
  EXPECT_GT(stats->cache_bytes, 0u);
  EXPECT_GE(stats->sessions, 1u);

  const auto final_stats = client.shutdown_server(&error);
  ASSERT_TRUE(final_stats.has_value()) << error;
  EXPECT_GE(final_stats->served_place, 2u);
  daemon_->wait();  // drains promptly once shutdown was requested
  EXPECT_FALSE(daemon_->running());
}

// ---- hostile-client matrix ------------------------------------------

TEST_F(QgdpdTest, IdleSessionIsEvictedWithTimeout) {
  QgdpdOptions opt;
  opt.idle_timeout_ms = 150;
  opt.frame_timeout_ms = 150;
  restart(opt);

  // Connect and send nothing: the idle deadline must evict us with a
  // typed kTimeout frame followed by an orderly close.
  const int fd = raw_connect();
  EXPECT_EQ(raw_error_status(fd), StatusCode::kTimeout);
  EXPECT_TRUE(raw_at_eof(fd));
  ::close(fd);
  wait_active_sessions(0);
}

TEST_F(QgdpdTest, SlowlorisHalfHeaderIsEvictedWithTimeout) {
  QgdpdOptions opt;
  opt.idle_timeout_ms = 2'000;
  opt.frame_timeout_ms = 150;
  restart(opt);

  // Send three bytes of a valid header, then stall. The frame deadline
  // (not the longer idle deadline) must fire: once a frame starts, the
  // rest has 150 ms to arrive.
  const std::string good = encode_frame(FrameType::kStatsRequest, format_empty_request());
  const int fd = raw_connect();
  ASSERT_TRUE(raw_send(fd, good.substr(0, 3)));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(raw_error_status(fd), StatusCode::kTimeout);
  EXPECT_TRUE(raw_at_eof(fd));
  const auto waited =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(waited, 1'500.0);  // frame deadline, not idle deadline
  ::close(fd);
  wait_active_sessions(0);

  // The eviction is visible in the daemon's counters.
  QgdpdClient client = connect();
  std::string error;
  const auto stats = client.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_GE(stats->timeouts, 1u);
  EXPECT_EQ(stats->internal_errors, 0u);
}

TEST_F(QgdpdTest, MalformedPayloadsAreTypedAndBadMagicCloses) {
  const int fd = raw_connect();

  // A stats request carrying a payload is kBadRequest — and the
  // connection survives to serve the corrected retry.
  ASSERT_TRUE(raw_send(fd, encode_frame(FrameType::kStatsRequest, "verbose 1\n\n")));
  EXPECT_EQ(raw_error_status(fd), StatusCode::kBadRequest);
  ASSERT_TRUE(raw_send(fd, encode_frame(FrameType::kStatsRequest, format_empty_request())));
  const auto stats = raw_read_frame(fd);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->type, FrameType::kStatsReply);
  const auto parsed = parse_stats_reply(stats->payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->protocol_errors, 1u);

  // A reply frame type sent as a request is kBadRequest too.
  ASSERT_TRUE(raw_send(fd, encode_frame(FrameType::kPlaceReply, "status 0\n\n")));
  EXPECT_EQ(raw_error_status(fd), StatusCode::kBadRequest);

  // Garbage magic is unrecoverable: one kBadFrame frame, then close.
  ASSERT_TRUE(raw_send(fd, std::string(kFrameHeaderSize, 'X')));
  EXPECT_EQ(raw_error_status(fd), StatusCode::kBadFrame);
  EXPECT_TRUE(raw_at_eof(fd));
  ::close(fd);
  wait_active_sessions(0);
}

TEST_F(QgdpdTest, MidReplyDisconnectLeavesDaemonServiceable) {
  // Prefill the cache so the raw client's request answers immediately
  // with a large (~1117-qubit .qlay) reply.
  QgdpdClient warm = connect();
  std::string error;
  PlaceRequest place;
  place.topology = "heavyhex-23x39";
  place.want_layout = false;
  ASSERT_TRUE(warm.place(place, &error).has_value()) << error;

  // A tiny receive buffer forces the server to block mid-reply; we
  // hang up without reading a byte of it.
  place.want_layout = true;
  const int fd = raw_connect(/*rcvbuf=*/2048);
  ASSERT_TRUE(raw_send(fd, encode_frame(FrameType::kPlaceRequest, format_place_request(place))));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ::close(fd);

  // The write failure must kill only that session — the daemon keeps
  // serving, records no internal errors, and reaps the thread.
  const auto stats = warm.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->internal_errors, 0u);
  wait_active_sessions(1);  // only `warm` remains
}

TEST_F(QgdpdTest, HalfCloseMidReplyDoesNotRaiseSigpipe) {
  // Prefill so the raw client's request answers immediately with a
  // large reply the daemon has to stream.
  QgdpdClient warm = connect();
  std::string error;
  PlaceRequest place;
  place.topology = "heavyhex-23x39";
  place.want_layout = false;
  ASSERT_TRUE(warm.place(place, &error).has_value()) << error;

  // A tiny receive buffer wedges the daemon mid-send; an abortive
  // close (SO_LINGER 0 → RST) then turns its next write into EPIPE.
  // With SIGPIPE ignored process-wide that is a survivable error on
  // one session; without it the whole daemon dies here.
  place.want_layout = true;
  const int fd = raw_connect(/*rcvbuf=*/2048);
  ASSERT_TRUE(raw_send(fd, encode_frame(FrameType::kPlaceRequest, format_place_request(place))));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  linger abort_close{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &abort_close, sizeof(abort_close));
  ::close(fd);

  // The daemon keeps serving on a live session, with no internal
  // errors, and reaps the killed session's thread.
  const auto stats = warm.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->internal_errors, 0u);
  wait_active_sessions(1);  // only `warm` remains
}

TEST_F(QgdpdTest, ConnectCloseChurnDoesNotLeakFdsOrSessions) {
  auto count_fds = [] {
    int n = 0;
    DIR* dir = ::opendir("/proc/self/fd");
    if (!dir) return -1;
    while (::readdir(dir) != nullptr) ++n;
    ::closedir(dir);
    return n;
  };

  // A client that rides out transient kOverloaded sheds: a churn burst
  // can transiently fill the registry while the accept loop drains the
  // kernel backlog of already-closed connections behind it.
  ClientOptions copt;
  copt.retry.max_attempts = 20;
  copt.retry.backoff_base_ms = 10;
  copt.retry.backoff_max_ms = 100;

  // Warm-up churn so lazily-created fds exist, then drain (the accept
  // queue is FIFO — once a later connection is served, the churn ahead
  // of it has been accepted) before taking the fd baseline.
  for (int i = 0; i < 10; ++i) ::close(raw_connect());
  {
    QgdpdClient drain{copt};
    std::string error;
    ASSERT_TRUE(drain.connect("127.0.0.1", daemon_->port(), &error)) << error;
    ASSERT_TRUE(drain.stats(&error).has_value()) << error;
  }
  wait_active_sessions(0);
  const int before = count_fds();
  ASSERT_GT(before, 0);

  for (int i = 0; i < 500; ++i) {
    const int fd = raw_connect();
    ASSERT_GE(fd, 0);
    ::close(fd);
  }

  // The daemon still serves; the retry policy absorbs any shed while
  // the backlog drains.
  QgdpdClient client{copt};
  std::string error;
  ASSERT_TRUE(client.connect("127.0.0.1", daemon_->port(), &error)) << error;
  const auto stats = client.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  // Every churn connection was accounted — accepted or shed, never lost.
  EXPECT_GE(stats->sessions + stats->shed_sessions, 510u);
  EXPECT_EQ(stats->internal_errors, 0u);

  wait_active_sessions(1);  // only `client` remains
  const int after = count_fds();
  EXPECT_LE(after, before + 8) << "fd leak across connect/close churn";
}

TEST_F(QgdpdTest, SessionCapShedsWithOverloadedAndRecovers) {
  QgdpdOptions opt;
  opt.max_sessions = 2;
  restart(opt);

  // Fill the cap with two registered sessions (a completed roundtrip
  // guarantees registration).
  QgdpdClient a = connect();
  QgdpdClient b = connect();
  std::string error;
  ASSERT_TRUE(a.stats(&error).has_value()) << error;
  ASSERT_TRUE(b.stats(&error).has_value()) << error;

  // The third connection is shed at accept: one kOverloaded frame,
  // then close — reading without sending sees it cleanly.
  const int fd = raw_connect();
  EXPECT_EQ(raw_error_status(fd), StatusCode::kOverloaded);
  EXPECT_TRUE(raw_at_eof(fd));
  ::close(fd);

  const auto stats = a.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->shed_sessions, 1u);
  EXPECT_EQ(stats->active_sessions, 2u);

  // Freeing a slot restores service for new connections.
  b.close();
  wait_active_sessions(1);
  QgdpdClient c = connect();
  EXPECT_TRUE(c.stats(&error).has_value()) << error;
}

TEST_F(QgdpdTest, ColdPlaceCapShedsAndRetryPolicySucceeds) {
  QgdpdOptions opt;
  opt.max_inflight_places = 1;
  restart(opt);

  PlaceRequest cold;
  cold.topology = "heavyhex-23x39";  // ~hundreds of ms cold: a wide race-free window
  cold.use_cache = false;
  cold.want_layout = false;

  // A holds the single cold-place slot; B's cold place must shed.
  QgdpdClient a = connect();
  std::thread holder([&] {
    std::string err;
    const auto rep = a.place(cold, &err);
    EXPECT_TRUE(rep.has_value()) << err;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  QgdpdClient b = connect();
  std::string error;
  EXPECT_FALSE(b.place(cold, &error).has_value());
  EXPECT_EQ(b.last_status(), StatusCode::kOverloaded);
  EXPECT_NE(error.find("overloaded"), std::string::npos) << error;
  holder.join();

  // The shed request's connection stayed open, and a client with a
  // retry policy rides out the cap without surfacing the shed at all.
  const auto stats = b.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->shed_places, 1u);

  ClientOptions copt;
  copt.retry.max_attempts = 5;
  copt.retry.backoff_base_ms = 20;
  QgdpdClient c{copt};
  ASSERT_TRUE(c.connect("127.0.0.1", daemon_->port(), &error)) << error;
  PlaceRequest cached = cold;
  cached.use_cache = true;
  const auto rep = c.place(cached, &error);
  ASSERT_TRUE(rep.has_value()) << error;
  EXPECT_EQ(rep->status, StatusCode::kOk);
}

// ---- durable cache tier ---------------------------------------------

TEST_F(QgdpdTest, WarmRestartServesByteIdenticalFromDisk) {
  char tmpl[] = "/tmp/qgdp_persist_XXXXXX";
  const std::string cache_dir = ::mkdtemp(tmpl);

  QgdpdOptions opt;
  opt.cache_dir = cache_dir;
  restart(opt);

  PlaceRequest req;
  req.topology = "Grid";
  req.want_layout = true;

  QgdpdClient cold_client = connect();
  std::string error;
  const auto cold = cold_client.place(req, &error);
  ASSERT_TRUE(cold.has_value()) << error;
  EXPECT_FALSE(cold->cached);
  const std::string cold_layout = cold->layout;
  const std::string cache_key = cold->cache_key;
  cold_client.close();

  // Stop flushes the store; the entry must be durable on disk now.
  daemon_->stop();
  {
    std::ifstream f(cache_dir + "/" + cache_key + ".qlc");
    ASSERT_TRUE(f.good()) << "durable entry missing after stop()";
  }

  // Sabotage the directory: a garbage entry and an interrupted write.
  {
    std::ofstream g(cache_dir + "/1111111111111111.qlc");
    g << "not a cache entry\n";
    std::ofstream t(cache_dir + "/2222222222222222.qlc.tmp");
    t << "interrupted";
  }

  // A fresh daemon over the same directory loads the good entry,
  // quarantines the rest, and serves the warm hit byte-identically.
  restart(opt);
  QgdpdClient warm_client = connect();
  const auto stats = warm_client.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->entries_loaded, 1u);
  EXPECT_EQ(stats->corrupt_quarantined, 2u);
  EXPECT_EQ(stats->cache_entries, 1u);

  const auto warm = warm_client.place(req, &error);
  ASSERT_TRUE(warm.has_value()) << error;
  EXPECT_TRUE(warm->cached);
  EXPECT_EQ(warm->cache_key, cache_key);
  EXPECT_EQ(warm->layout, cold_layout);  // byte-identical across restart

  // The persisted spacing makes warm sessions eco-capable: the edit
  // must match a local run against the restored layout.
  std::istringstream is(cold_layout);
  QuantumNetlist nl = read_layout(is);
  const Point p0 = nl.qubit(0).pos;
  EcoRequest eco;
  eco.want_layout = true;
  eco.moves = {{0, p0.x + 1.0, p0.y + 1.0}};
  const auto served = warm_client.eco(eco, &error);
  ASSERT_TRUE(served.has_value()) << error;
  EXPECT_TRUE(served->success);
  EXPECT_EQ(served->window_violations, 0);

  warm_client.close();
  daemon_->stop();
  for (const std::string name :
       {cache_key + ".qlc", std::string("1111111111111111.qlc.corrupt")}) {
    ::unlink((cache_dir + "/" + name).c_str());
  }
  ::rmdir(cache_dir.c_str());
}

TEST_F(QgdpdTest, PlaceBudgetTimesOutButBanksTheLayout) {
  QgdpdOptions opt;
  opt.place_budget_ms = 1;  // no cold pipeline run fits 1 ms
  restart(opt);

  PlaceRequest place;
  place.topology = "heavyhex-11x19";
  place.want_layout = true;

  // The cold place blows the budget: typed kTimeout, but the layout
  // was banked in the cache first.
  QgdpdClient client = connect();
  std::string error;
  EXPECT_FALSE(client.place(place, &error).has_value());
  EXPECT_EQ(client.last_status(), StatusCode::kTimeout);
  EXPECT_TRUE(is_retryable(client.last_status()));

  // The retry is warm — a cache hit skips the pipeline and the budget.
  const auto warm = client.place(place, &error);
  ASSERT_TRUE(warm.has_value()) << error;
  EXPECT_EQ(warm->status, StatusCode::kOk);
  EXPECT_TRUE(warm->cached);

  const auto stats = client.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->timeouts, 1u);
  EXPECT_EQ(stats->cache_hits, 1u);
}

}  // namespace
}  // namespace qgdp
