// Tests for the displacement/wirelength statistics module.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "metrics/stats.h"
#include "netlist/netlist_builder.h"
#include "netlist/topologies.h"

namespace qgdp {
namespace {

TEST(DisplacementStatsTest, ZeroWhenUnmoved) {
  const auto nl = build_netlist(make_grid_device());
  const auto s = displacement_stats(nl, nl);
  EXPECT_DOUBLE_EQ(s.total, 0.0);
  EXPECT_EQ(s.moved, 0);
  EXPECT_EQ(s.count, static_cast<int>(nl.component_count()));
  EXPECT_EQ(s.histogram[0], s.count);
}

TEST(DisplacementStatsTest, SingleMove) {
  auto before = build_netlist(make_grid_device());
  auto after = before;
  after.qubit(0).pos += Point{3.0, 4.0};  // displacement 5
  const auto s = displacement_stats(before, after);
  EXPECT_DOUBLE_EQ(s.total, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_EQ(s.moved, 1);
  EXPECT_EQ(s.histogram[3], 1);  // bucket [4,8)
  const auto qs = qubit_displacement_stats(before, after);
  EXPECT_DOUBLE_EQ(qs.total, 5.0);
  const auto bs = block_displacement_stats(before, after);
  EXPECT_DOUBLE_EQ(bs.total, 0.0);
}

TEST(DisplacementStatsTest, MedianAndP95Ordering) {
  auto before = build_netlist(make_grid_device());
  auto after = before;
  for (std::size_t b = 0; b < after.block_count(); ++b) {
    after.block(static_cast<int>(b)).pos += Point{static_cast<double>(b % 3), 0.0};
  }
  const auto s = block_displacement_stats(before, after);
  EXPECT_LE(s.median, s.p95);
  EXPECT_LE(s.p95, s.max + 1e-12);
  EXPECT_NEAR(s.mean, 1.0, 0.05);  // displacements 0/1/2 evenly
}

TEST(DisplacementStatsTest, RejectsMismatchedNetlists) {
  const auto a = build_netlist(make_grid_device());
  const auto b = build_netlist(make_falcon27());
  EXPECT_THROW(displacement_stats(a, b), std::invalid_argument);
}

TEST(DisplacementStatsTest, TotalsMatchPipelineTelemetry) {
  QuantumNetlist nl = build_netlist(make_falcon27());
  GlobalPlacer{}.place(nl);
  const QuantumNetlist gp_snapshot = nl;
  PipelineOptions opt;
  opt.run_gp = false;
  opt.legalizer = LegalizerKind::kQgdp;
  const auto out = Pipeline(opt).run(nl);
  const auto qs = qubit_displacement_stats(gp_snapshot, nl);
  EXPECT_NEAR(qs.total, out.stats.qubit.total_displacement, 1e-6);
  const auto bs = block_displacement_stats(gp_snapshot, nl);
  EXPECT_NEAR(bs.total, out.stats.blocks.total_displacement, 1e-6);
}

TEST(WirelengthStatsTest, Basics) {
  QuantumNetlist nl;
  nl.add_qubit({0, 0}, 3, 3, 5.0);
  nl.add_qubit({10, 0}, 3, 3, 5.07);
  nl.add_qubit({10, 5}, 3, 3, 5.14);
  nl.set_die(Rect{0, 0, 20, 20});
  const std::vector<Net> nets = {
      {{NodeRef::Kind::kQubit, 0}, {NodeRef::Kind::kQubit, 1}, 1.0},
      {{NodeRef::Kind::kQubit, 1}, {NodeRef::Kind::kQubit, 2}, 2.0},
  };
  const auto s = wirelength_stats(nl, nets);
  EXPECT_DOUBLE_EQ(s.total, 10.0 + 2.0 * 5.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.mean, 10.0);
}

TEST(WirelengthStatsTest, EmptyNets) {
  const auto nl = build_netlist(make_grid_device());
  const auto s = wirelength_stats(nl, {});
  EXPECT_DOUBLE_EQ(s.total, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(WirelengthStatsTest, LegalizationKeepsWirelengthSane) {
  // Legalization should not blow up wirelength versus GP by more than
  // a small factor (it moves components minimally).
  QuantumNetlist nl = build_netlist(make_grid_device());
  GlobalPlacer{}.place(nl);
  const auto nets = build_connection_nets(nl, ConnectionStyle::kPseudo);
  const double wl_gp = wirelength_stats(nl, nets).total;
  PipelineOptions opt;
  opt.run_gp = false;
  opt.legalizer = LegalizerKind::kQgdp;
  Pipeline(opt).run(nl);
  const double wl_lg = wirelength_stats(nl, nets).total;
  EXPECT_LT(wl_lg, wl_gp * 3.0);
}

}  // namespace
}  // namespace qgdp
