// Reusable legality-invariant checker for property-based tests.
//
// A legalized quantum layout must satisfy, for every flow and every
// topology (paper §III-B):
//   1. no site overlap        — component rects disjoint AND no two
//                               wire blocks share a bin center;
//   2. all components on-fabric — rects inside the die (Eq. 2);
//   3. wire blocks on the bin lattice (centers at k+0.5);
//   4. min-spacing respected  — qubit pairs separated per-axis by the
//                               flow's achieved spacing (Eq. 1);
//   5. no resonator left at its pre-placement seed stack;
//   6. frequency constraints  — coupled qubits detuned, and resonators
//                               sharing a qubit detuned (the crosstalk
//                               preconditions the frequency planner
//                               guarantees by construction).
//
// check_legality_invariants() returns human-readable failure strings
// (empty = legal), so gtest callers can EXPECT_TRUE(failures.empty())
// and print exactly what broke. Builders adding a new flow or topology
// should run their layouts through this checker — see
// tests/invariants_test.cpp for the randomized seeds × flows ×
// topologies matrix.
#pragma once

#include <cmath>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "metrics/audit.h"
#include "netlist/quantum_netlist.h"

namespace qgdp::test_support {

struct InvariantOptions {
  /// Achieved qubit spacing of the flow under test (0 disables rule 4).
  double qubit_min_spacing{0.0};
  /// Minimum detuning (GHz) between coupled qubits / resonators sharing
  /// a qubit. The default builder plan separates adjacent qubit groups
  /// by 70 MHz with ±8 MHz jitter, so 40 MHz is a safe floor; set to 0
  /// to skip the frequency rules (e.g. hand-built netlists).
  double min_qubit_detuning_ghz{0.040};
  double min_resonator_detuning_ghz{0.001};
  double eps{1e-6};
};

/// All invariant violations of the current layout (empty = legal).
inline std::vector<std::string> check_legality_invariants(const QuantumNetlist& nl,
                                                          const InvariantOptions& opt = {}) {
  std::vector<std::string> failures;

  // Rules 1–5 (geometric) ride on the audit DRC, which is itself
  // differential-tested; the checker adds the site-uniqueness and
  // frequency rules the audit does not cover.
  AuditOptions aopt;
  aopt.qubit_min_spacing = opt.qubit_min_spacing;
  aopt.eps = opt.eps;
  const AuditReport audit = audit_layout(nl, aopt);
  for (const auto& v : audit.violations) {
    failures.push_back("[" + to_string(v.kind) + "] " + v.detail);
  }

  // Rule 1b: no two wire blocks on the same bin (site). Overlap would
  // catch coincident unit blocks too, but this check stays valid even
  // for zero-area degenerate blocks.
  std::set<std::pair<long long, long long>> bins;
  for (const auto& b : nl.blocks()) {
    const auto key = std::make_pair(static_cast<long long>(std::llround(b.pos.x * 2)),
                                    static_cast<long long>(std::llround(b.pos.y * 2)));
    if (!bins.insert(key).second) {
      failures.push_back("[site-overlap] two blocks share bin center (" +
                         std::to_string(b.pos.x) + ", " + std::to_string(b.pos.y) + ")");
    }
  }

  // Rule 6: frequency constraints.
  if (opt.min_qubit_detuning_ghz > 0.0) {
    for (const auto& e : nl.edges()) {
      const double df = std::abs(nl.qubit(e.q0).frequency - nl.qubit(e.q1).frequency);
      if (df < opt.min_qubit_detuning_ghz) {
        failures.push_back("[frequency] coupled qubits " + std::to_string(e.q0) + "," +
                           std::to_string(e.q1) + " detuned by only " + std::to_string(df) +
                           " GHz");
      }
    }
  }
  if (opt.min_resonator_detuning_ghz > 0.0) {
    for (std::size_t q = 0; q < nl.qubit_count(); ++q) {
      const auto& inc = nl.incident_edges(static_cast<int>(q));
      for (std::size_t i = 0; i < inc.size(); ++i) {
        for (std::size_t j = i + 1; j < inc.size(); ++j) {
          const double df =
              std::abs(nl.edge(inc[i]).frequency - nl.edge(inc[j]).frequency);
          if (df < opt.min_resonator_detuning_ghz) {
            failures.push_back("[frequency] resonators " + std::to_string(inc[i]) + "," +
                               std::to_string(inc[j]) + " sharing qubit " + std::to_string(q) +
                               " detuned by only " + std::to_string(df) + " GHz");
          }
        }
      }
    }
  }
  return failures;
}

}  // namespace qgdp::test_support
