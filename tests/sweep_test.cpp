// Deep property sweeps: weighted displacement LP, Abacus packing
// optimality against brute force, and the full pipeline across the
// (topology × seed) matrix with audit + metric invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/pipeline.h"
#include "graph/constraint_graph.h"
#include "legalization/abacus_legalizer.h"
#include "metrics/audit.h"
#include "metrics/clusters.h"
#include "metrics/crossings.h"
#include "metrics/hotspots.h"
#include "netlist/netlist_builder.h"
#include "netlist/topologies.h"
#include "runtime/batch_runner.h"

namespace qgdp {
namespace {

// ---- weighted displacement LP ---------------------------------------

TEST(WeightedDisplacement, HeavyNodeStaysPut) {
  // Two nodes in conflict; the heavy one must not move.
  ConstraintGraph g(2);
  g.set_bounds(0, 0.0, 20.0);
  g.set_bounds(1, 0.0, 20.0);
  g.add_constraint(0, 1, 4.0);
  DisplacementSolver solver;
  const auto sol = solver.solve(g, {10.0, 10.0}, {100.0, 1.0});
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.position[0], 10.0, 1e-6);
  EXPECT_NEAR(sol.position[1], 14.0, 1e-6);
}

TEST(WeightedDisplacement, WeightsFlipTheWinner) {
  ConstraintGraph g(2);
  g.set_bounds(0, 0.0, 20.0);
  g.set_bounds(1, 0.0, 20.0);
  g.add_constraint(0, 1, 4.0);
  DisplacementSolver solver;
  const auto sol = solver.solve(g, {10.0, 10.0}, {1.0, 100.0});
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.position[1], 10.0, 1e-6);
  EXPECT_NEAR(sol.position[0], 6.0, 1e-6);
}

class WeightedDisplacementProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(WeightedDisplacementProperty, WeightedObjectiveAboveWeightedDual) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> pos(0.0, 30.0);
  std::uniform_int_distribution<int> weights(1, 9);
  DisplacementSolver solver;
  for (int trial = 0; trial < 15; ++trial) {
    ConstraintGraph g(6);
    std::vector<double> target(6);
    std::vector<double> weight(6);
    for (int i = 0; i < 6; ++i) {
      g.set_bounds(i, 0.0, 60.0);
      target[static_cast<std::size_t>(i)] = pos(rng);
      weight[static_cast<std::size_t>(i)] = weights(rng);
    }
    for (int i = 0; i < 6; ++i) {
      for (int j = i + 1; j < 6; ++j) {
        if ((rng() & 3u) == 0u) g.add_constraint(i, j, 2.0);
      }
    }
    if (!g.feasible()) continue;
    const auto sol = solver.solve(g, target, weight);
    ASSERT_TRUE(sol.feasible);
    const double lb = solver.dual_lower_bound(g, target, weight);
    EXPECT_GE(sol.objective, lb - std::max(1e-3, 1e-6 * lb));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedDisplacementProperty,
                         ::testing::Values(21u, 42u, 63u, 84u));

// ---- Abacus packing vs brute force -----------------------------------

/// Reference: optimal unit-cell packing cost in [0, width) by trying
/// every integer arrangement (cells keep their relative order).
double brute_force_pack_cost(const std::vector<double>& targets, double width) {
  const int n = static_cast<int>(targets.size());
  const int w = static_cast<int>(width);
  // dp[i][x] = min cost placing cells i.. with first at column >= x.
  std::vector<std::vector<double>> dp(static_cast<std::size_t>(n + 1),
                                      std::vector<double>(static_cast<std::size_t>(w + 1), 0.0));
  for (int i = n - 1; i >= 0; --i) {
    for (int x = w; x >= 0; --x) {
      double best = std::numeric_limits<double>::infinity();
      if (x < w - (n - i - 1)) {
        // Place cell i at column x, or skip column x.
        const double d = (x - targets[static_cast<std::size_t>(i)]);
        const double place =
            d * d + dp[static_cast<std::size_t>(i + 1)][static_cast<std::size_t>(x + 1)];
        best = place;
      }
      if (x + 1 <= w) {
        best = std::min(best, dp[static_cast<std::size_t>(i)][static_cast<std::size_t>(x + 1)]);
      }
      dp[static_cast<std::size_t>(i)][static_cast<std::size_t>(x)] = best;
    }
  }
  return dp[0][0];
}

class AbacusOptimality : public ::testing::TestWithParam<unsigned> {};

TEST_P(AbacusOptimality, RowPackingMatchesBruteForceOnSmallRows) {
  // Single free row; uniform 1-wide cells. Abacus clumping is optimal
  // for quadratic cost in continuous space; the integer snap stays
  // within one cell of the integer optimum.
  std::mt19937 rng(GetParam());
  const double width = 10.0;
  std::uniform_real_distribution<double> t(0.0, width - 1.0);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 1 + static_cast<int>(rng() % 6);
    QuantumNetlist nl;
    nl.add_qubit({2.0, 8.0}, 3, 3, 5.0);   // parked away from the row
    nl.add_qubit({8.0, 8.0}, 3, 3, 5.07);
    nl.add_edge(0, 1, 6.5, static_cast<double>(n));
    nl.partition_all_edges();
    nl.set_die(Rect{0, 0, width, 10});
    std::vector<double> targets;
    for (int k = 0; k < n; ++k) {
      const double tx = t(rng);
      targets.push_back(tx);
      nl.block(k).pos = {tx + 0.5, 0.5};  // row y = 0
    }
    std::sort(targets.begin(), targets.end());
    BinGrid grid(nl.die());
    grid.block_rect(Rect{0, 2, width, 10});  // only row 0 free
    const auto res = AbacusLegalizer{}.legalize(nl, grid);
    ASSERT_TRUE(res.success);
    double cost = 0.0;
    // Recompute quadratic cost in left-edge coordinates.
    std::vector<double> placed;
    for (int k = 0; k < n; ++k) placed.push_back(nl.block(k).pos.x - 0.5);
    std::sort(placed.begin(), placed.end());
    for (int k = 0; k < n; ++k) {
      const double d = placed[static_cast<std::size_t>(k)] - targets[static_cast<std::size_t>(k)];
      cost += d * d;
    }
    const double opt = brute_force_pack_cost(targets, width);
    EXPECT_LE(cost, opt + 1.0 + 0.5 * n) << "n=" << n;  // snap slack
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbacusOptimality, ::testing::Values(7u, 77u, 777u));

// ---- pipeline (topology × seed) matrix --------------------------------

/// The (topology × seed) sweep of the qGDP flow, batch-executed over
/// the runtime's BatchRunner (one lane per hardware thread) instead of
/// one pipeline per gtest case — the whole matrix runs concurrently
/// and every cell's invariants are checked from the merged results.
TEST(PipelineSweep, LegalAuditAndMetricInvariantsAcrossMatrix) {
  const auto topologies = all_paper_topologies();
  std::vector<BatchJob> jobs;
  for (const int topo_idx : {0, 1, 2, 4, 5}) {
    for (const unsigned seed : {1u, 7u, 13u}) {
      BatchJob job;
      job.spec = topologies[static_cast<std::size_t>(topo_idx)];
      job.kind = LegalizerKind::kQgdp;
      job.gp_seed = seed;
      job.run_detailed = true;
      jobs.push_back(std::move(job));
    }
  }
  {
    // Eagle only at one seed (expensive).
    BatchJob job;
    job.spec = topologies[3];
    job.kind = LegalizerKind::kQgdp;
    job.gp_seed = 1u;
    job.run_detailed = true;
    jobs.push_back(std::move(job));
  }

  const auto results = BatchRunner{}.run(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (const auto& res : results) {
    SCOPED_TRACE(res.job.spec.name + " seed " + std::to_string(res.job.gp_seed));
    const QuantumNetlist& nl = res.netlist;

    // Hard invariants.
    AuditOptions aopt;
    aopt.qubit_min_spacing = res.stats.qubit.spacing_used;
    const auto audit = audit_layout(nl, aopt);
    EXPECT_TRUE(audit.clean());
    EXPECT_EQ(res.stats.blocks.placed, static_cast<int>(nl.block_count()));

    // Quality invariants that define qGDP.
    EXPECT_GE(unified_edge_count(nl), static_cast<int>(nl.edge_count() * 9) / 10);
    EXPECT_EQ(compute_hotspots(nl).spacing_violations, 0);
    // Crossings stay an order of magnitude under the edge count.
    EXPECT_LE(compute_crossings(nl).total, static_cast<int>(nl.edge_count()) / 4);
  }
}

}  // namespace
}  // namespace qgdp
