// Worker-tier tests: the fork-isolated execution path of qgdpd
// (server/worker_pool.h). Every failure mode a child can die by —
// clean exit, plain nonzero exit, SIGSEGV, an RLIMIT_AS breach, a
// wall-deadline hang — is exercised and must come back as the typed
// classification (13 worker_crashed / 14 resource_exhausted), with the
// slot recycled and no fd or zombie leaked. The clean path is pinned
// byte-identical to the in-process pipeline across the paper
// topologies, for place and for eco, and the hedged path must launch
// exactly one backup that wins against a hanging primary.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/incremental.h"
#include "core/pipeline.h"
#include "io/serialization.h"
#include "netlist/topologies.h"
#include "runtime/batch_runner.h"
#include "server/cache_store.h"
#include "server/fault_injector.h"
#include "server/protocol.h"
#include "server/worker_pool.h"

// Sanitizer builds change two child-death signatures: ASan intercepts
// the failing allocation under RLIMIT_AS (the child dies by sanitizer
// abort, not bad_alloc), and both sanitizers inflate the image enough
// to shift which limit trips first. The OOM tests accept either typed
// resource/crash classification there — the invariant under test is
// "typed reply, daemon-side pool survives", not the exact code.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define QGDP_TEST_SANITIZED 1
#endif
#if !defined(QGDP_TEST_SANITIZED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define QGDP_TEST_SANITIZED 1
#endif
#endif

namespace qgdp {
namespace {

using namespace qgdp::server;

/// The in-process reference: the identical job the worker child runs.
[[nodiscard]] std::pair<std::string, double> local_place(const PlaceRequest& req) {
  const auto kind = flow_by_name(req.flow);
  const auto spec = topology_by_name(req.topology);
  EXPECT_TRUE(kind.has_value() && spec.has_value()) << req.topology;
  BatchJob job;
  job.spec = *spec;
  job.kind = *kind;
  job.gp_seed = req.seed;
  job.gp_levels = req.gp_levels;
  job.run_detailed = req.run_detailed;
  const BatchResult res = run_batch_job(job);
  std::ostringstream qlay;
  write_layout(res.netlist, qlay);
  return {qlay.str(), quantum_flow(*kind) ? res.stats.qubit.spacing_used : 0.0};
}

/// A well-formed 16-hex cache key — the `.qlc` codec rejects any other
/// shape, so worker replies keyed off a junk string fail their checksum.
[[nodiscard]] std::string test_key() { return hex64(fnv1a64("worker-test")); }

[[nodiscard]] PlaceRequest grid_request() {
  PlaceRequest req;
  req.topology = "Grid";
  return req;
}

/// Pool with hedging off and an optional forced fault directive.
[[nodiscard]] WorkerPoolOptions plain_pool(std::string directive = "") {
  WorkerPoolOptions opt;
  opt.max_workers = 2;
  opt.hedging = false;
  opt.limits.wall_timeout_ms = 120'000;  // generous: Debug pipelines are slow
  opt.test_fault_directive = std::move(directive);
  return opt;
}

[[nodiscard]] int count_open_fds() {
  int n = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (!dir) return -1;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n;
}

// Runs first by design: the breach must land before any in-process
// pipeline run inflates this process's malloc arenas — a forked child
// inherits them, and address space recycled from the parent's peak is
// invisible to RLIMIT_AS growth accounting.
TEST(WorkerPool, OrganicPipelineOomUnderTinyCapIsResourceExhausted) {
  // No injected fault: the pipeline itself trips the cap placing a
  // 90'000-qubit grid under a 2 MB growth allowance — netlist
  // construction alone needs fresh mappings past it — and the child's
  // bad_alloc → kWorkerExitOom conversion types the death. The wall
  // deadline is a backstop for environments where inherited arenas do
  // absorb the growth; that kill is typed kResourceExhausted too.
  WorkerPoolOptions opt = plain_pool();
  opt.limits.max_rss_mb = 2;
  opt.limits.wall_timeout_ms = 15'000;
  WorkerPool pool{opt};
  PlaceRequest req;
  req.topology = "grid-300x300";
  const WorkerResult w = pool.run_place(req, test_key(), 90'000);
#ifdef QGDP_TEST_SANITIZED
  EXPECT_TRUE(w.status == StatusCode::kResourceExhausted ||
              w.status == StatusCode::kWorkerCrashed)
      << to_string(w.status) << ": " << w.message;
#else
  EXPECT_EQ(w.status, StatusCode::kResourceExhausted) << w.message;
  EXPECT_EQ(pool.counters().worker_oom_kills + pool.counters().worker_timeouts, 1u);
#endif
  EXPECT_EQ(pool.counters().workers_recycled, 1u);
}

TEST(WorkerPool, ForkedPlaceIsByteIdenticalToInProcessAcrossPaperTopologies) {
  WorkerPool pool{plain_pool()};
  std::size_t tested = 0;
  for (const DeviceSpec& spec : all_paper_topologies()) {
    PlaceRequest req;
    req.topology = spec.name;
    const auto [local_text, local_spacing] = local_place(req);
    const std::string key = hex64(fnv1a64(spec.name));

    const WorkerResult w =
        pool.run_place(req, key, static_cast<std::size_t>(spec.qubit_count));
    ASSERT_EQ(w.status, StatusCode::kOk) << spec.name << ": " << w.message;
    ASSERT_EQ(w.reply_type, FrameType::kPlaceReply) << spec.name;
    EXPECT_EQ(w.layout, local_text) << spec.name;
    EXPECT_EQ(w.spacing, local_spacing) << spec.name;

    const auto rep = parse_place_reply(w.reply_payload);
    ASSERT_TRUE(rep.has_value()) << spec.name;
    EXPECT_EQ(rep->cache_key, key);
    EXPECT_EQ(rep->layout_hash, hex64(fnv1a64(local_text)));
    EXPECT_EQ(rep->qubits, static_cast<std::size_t>(spec.qubit_count));
    ++tested;
  }
  const WorkerPoolCounters c = pool.counters();
  EXPECT_EQ(c.launched, tested);
  EXPECT_EQ(c.completed_ok, tested);
  EXPECT_EQ(c.worker_crashes, 0u);
  EXPECT_EQ(c.workers_recycled, 0u);
}

TEST(WorkerPool, ForkedEcoMatchesLocalIncrementalLegalizer) {
  const auto [text, spacing] = local_place(grid_request());

  // Local reference: reparse the layout, apply the same moves with
  // IncrementalLegalizer directly — exactly what the child does.
  std::istringstream is(text);
  QuantumNetlist nl = read_layout(is);
  const Point p3 = nl.qubit(3).pos;
  const Point p17 = nl.qubit(17).pos;
  EcoRequest req;
  req.moves = {{3, p3.x + 2.0, p3.y + 1.0}, {17, p17.x - 1.0, p17.y + 2.0}};

  BinGrid grid = IncrementalLegalizer::grid_for(nl);
  EcoOptions eopt;
  eopt.min_spacing = spacing;
  // EcoRequest defaults to the "abacus" wire policy; mirror it here or
  // the reference legalizer re-places blocks under the Baa discipline.
  eopt.policy = EcoOptions::BlockPolicy::kAbacusWindow;
  std::vector<QubitMove> moves;
  for (const EcoMove& m : req.moves) moves.push_back({m.qubit, Point{m.x, m.y}});
  const EcoResult local = IncrementalLegalizer(eopt).move_qubits(nl, grid, moves);
  ASSERT_TRUE(local.success);
  std::ostringstream local_qlay;
  write_layout(nl, local_qlay);

  WorkerPool pool{plain_pool()};
  const WorkerResult w = pool.run_eco(req, text, spacing, nl.qubit_count());
  ASSERT_EQ(w.status, StatusCode::kOk) << w.message;
  ASSERT_EQ(w.reply_type, FrameType::kEcoReply);
  const auto rep = parse_eco_reply(w.reply_payload);
  ASSERT_TRUE(rep.has_value());
  EXPECT_TRUE(rep->success);
  EXPECT_EQ(rep->ripped_blocks, local.ripped_blocks);
  EXPECT_EQ(rep->replaced_blocks, local.replaced_blocks);
  EXPECT_EQ(w.layout, local_qlay.str());
  EXPECT_EQ(w.spacing, spacing);
  EXPECT_EQ(rep->layout_hash, hex64(fnv1a64(local_qlay.str())));
}

TEST(WorkerPool, CleanExitWithTypedPipelineErrorPassesThrough) {
  // The child runs to completion but the request itself is bad: the
  // reply is a typed error frame, not a supervisor classification.
  WorkerPool pool{plain_pool()};
  PlaceRequest req = grid_request();
  req.flow = "annealer";
  const WorkerResult w = pool.run_place(req, test_key(), 25);
  ASSERT_EQ(w.status, StatusCode::kOk) << w.message;
  ASSERT_EQ(w.reply_type, FrameType::kErrorReply);
  const auto err = parse_error_reply(w.reply_payload);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->status, StatusCode::kUnknownFlow);
  const WorkerPoolCounters c = pool.counters();
  EXPECT_EQ(c.completed_ok, 1u);
  EXPECT_EQ(c.worker_crashes, 0u);
}

TEST(WorkerPool, PlainNonzeroExitIsWorkerCrashed) {
  WorkerPool pool{plain_pool("exit1")};
  const WorkerResult w = pool.run_place(grid_request(), test_key(), 25);
  EXPECT_EQ(w.status, StatusCode::kWorkerCrashed);
  EXPECT_NE(w.message.find("code 1"), std::string::npos) << w.message;
  const WorkerPoolCounters c = pool.counters();
  EXPECT_EQ(c.worker_crashes, 1u);
  EXPECT_EQ(c.workers_recycled, 1u);
  EXPECT_EQ(c.completed_ok, 0u);
}

TEST(WorkerPool, SigsegvIsWorkerCrashedAndPoolKeepsServing) {
  WorkerPoolOptions opt = plain_pool("crash");
  WorkerPool pool{opt};
  const WorkerResult w = pool.run_place(grid_request(), test_key(), 25);
  EXPECT_EQ(w.status, StatusCode::kWorkerCrashed);
  EXPECT_EQ(pool.counters().worker_crashes, 1u);
  EXPECT_EQ(pool.counters().workers_recycled, 1u);

  // The crash consumed one slot and one child — the next run on the
  // same pool must succeed (recycling, not poisoning).
  WorkerPool healthy{plain_pool()};
  const auto [local_text, local_spacing] = local_place(grid_request());
  const WorkerResult ok = healthy.run_place(grid_request(), test_key(), 25);
  ASSERT_EQ(ok.status, StatusCode::kOk) << ok.message;
  EXPECT_EQ(ok.layout, local_text);
  EXPECT_EQ(ok.spacing, local_spacing);
}

TEST(WorkerPool, RlimitAsBreachIsResourceExhausted) {
  // The injected OOM allocates-and-touches until the RLIMIT_AS
  // governor fails an allocation; a tiny growth cap makes that quick.
  WorkerPoolOptions opt = plain_pool("oom");
  opt.limits.max_rss_mb = 32;
  WorkerPool pool{opt};
  const WorkerResult w = pool.run_place(grid_request(), test_key(), 25);
#ifdef QGDP_TEST_SANITIZED
  EXPECT_TRUE(w.status == StatusCode::kResourceExhausted ||
              w.status == StatusCode::kWorkerCrashed)
      << to_string(w.status) << ": " << w.message;
#else
  EXPECT_EQ(w.status, StatusCode::kResourceExhausted) << w.message;
  EXPECT_EQ(pool.counters().worker_oom_kills, 1u);
#endif
  EXPECT_EQ(pool.counters().workers_recycled, 1u);
}

TEST(WorkerPool, HangIsKilledAtTheWallDeadline) {
  WorkerPoolOptions opt = plain_pool("hang");
  opt.limits.wall_timeout_ms = 500;
  WorkerPool pool{opt};
  const auto t0 = std::chrono::steady_clock::now();
  const WorkerResult w = pool.run_place(grid_request(), test_key(), 25);
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_EQ(w.status, StatusCode::kResourceExhausted) << w.message;
  EXPECT_NE(w.message.find("deadline"), std::string::npos) << w.message;
  EXPECT_GE(ms, 400.0);      // the deadline actually gated it...
  EXPECT_LT(ms, 10'000.0);   // ...and the SIGKILL was prompt
  const WorkerPoolCounters c = pool.counters();
  EXPECT_EQ(c.worker_timeouts, 1u);
  EXPECT_EQ(c.workers_recycled, 1u);
}

TEST(WorkerPool, HundredCrashesRecycleWithoutFdOrZombieLeaks) {
  WorkerPool pool{plain_pool("crash")};
  // One burn-in run so lazily-created fds (topology registry, libc
  // internals) exist before the baseline is taken.
  (void)pool.run_place(grid_request(), test_key(), 25);
  const int before = count_open_fds();
  ASSERT_GT(before, 0);

  for (int i = 0; i < 100; ++i) {
    const WorkerResult w = pool.run_place(grid_request(), test_key(), 25);
    ASSERT_EQ(w.status, StatusCode::kWorkerCrashed) << "iteration " << i;
  }
  EXPECT_EQ(count_open_fds(), before);

  const WorkerPoolCounters c = pool.counters();
  EXPECT_EQ(c.launched, 101u);
  EXPECT_EQ(c.worker_crashes, 101u);
  EXPECT_EQ(c.workers_recycled, 101u);

  // Every child was waitpid-reaped: no zombies left for anyone else.
  errno = 0;
  int st = 0;
  EXPECT_EQ(::waitpid(-1, &st, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST(WorkerPool, HedgeBackupWinsAgainstAHangingPrimary) {
  // A fault schedule whose first three worker draws are clean (they
  // seed the EWMA bucket) and whose fourth is a hang. The seed is
  // searched, not guessed — the schedule is a pure function of
  // (seed, op index), so the search is deterministic and cheap.
  FaultConfig fc;
  fc.hang_child_permille = 500;
  for (fc.seed = 1; fc.seed < 100'000; ++fc.seed) {
    FaultInjector probe{fc};
    if (probe.next_worker() == FaultInjector::Action::kNone &&
        probe.next_worker() == FaultInjector::Action::kNone &&
        probe.next_worker() == FaultInjector::Action::kNone &&
        probe.next_worker() == FaultInjector::Action::kHangChild) {
      break;
    }
  }
  ASSERT_LT(fc.seed, 100'000u);
  FaultInjector faults{fc};

  WorkerPoolOptions opt;
  opt.max_workers = 2;
  opt.hedging = true;
  opt.hedge_floor_ms = 10;
  opt.hedge_min_samples = 3;
  opt.limits.wall_timeout_ms = 120'000;
  opt.faults = &faults;
  WorkerPool pool{opt};

  const auto [local_text, local_spacing] = local_place(grid_request());
  for (int i = 0; i < 3; ++i) {
    const WorkerResult w = pool.run_place(grid_request(), test_key(), 25);
    ASSERT_EQ(w.status, StatusCode::kOk) << "seeding run " << i << ": " << w.message;
    ASSERT_EQ(w.layout, local_text);
  }

  // Fourth run: the primary hangs; past the bucket's p99 estimate one
  // fault-free backup launches and wins with the identical bytes.
  const WorkerResult w = pool.run_place(grid_request(), test_key(), 25);
  ASSERT_EQ(w.status, StatusCode::kOk) << w.message;
  EXPECT_TRUE(w.hedged);
  EXPECT_TRUE(w.hedge_won);
  EXPECT_EQ(w.layout, local_text);
  EXPECT_EQ(w.spacing, local_spacing);

  const WorkerPoolCounters c = pool.counters();
  EXPECT_EQ(c.hedges_launched, 1u);
  EXPECT_EQ(c.hedge_wins, 1u);
  EXPECT_EQ(faults.injected(FaultInjector::Action::kHangChild), 1u);
}

TEST(WorkerPool, DecodeLayoutEntryRejectsTornBytes) {
  // The pipe hand-off codec: a checksummed .qlc entry. Any torn byte —
  // a child dying mid-write — must be rejected, never banked.
  const CacheStore codec{CacheStoreOptions{}};
  const std::string body = codec.encode_entry({"deadbeefdeadbeef", 1.5, "qlay 1\nqubits 2\n"});

  std::string layout;
  double spacing = 0.0;
  ASSERT_TRUE(WorkerPool::decode_layout_entry(body, "deadbeefdeadbeef", &layout, &spacing));
  EXPECT_EQ(layout, "qlay 1\nqubits 2\n");
  EXPECT_EQ(spacing, 1.5);

  EXPECT_FALSE(WorkerPool::decode_layout_entry(body, "0000000000000000", &layout, &spacing));
  std::string torn = body;
  torn[torn.size() / 2] ^= 0x01;
  EXPECT_FALSE(WorkerPool::decode_layout_entry(torn, "deadbeefdeadbeef", &layout, &spacing));
  EXPECT_FALSE(WorkerPool::decode_layout_entry(body.substr(0, body.size() - 1),
                                               "deadbeefdeadbeef", &layout, &spacing));
}

TEST(FaultInjectorWorker, WorkerDrawsAreDeterministicAndMasked) {
  FaultConfig fc;
  fc.seed = 42;
  fc.short_io_permille = 200;   // I/O classes: masked on worker draws
  fc.drop_recv_permille = 200;
  fc.crash_child_permille = 150;
  fc.oom_child_permille = 150;
  fc.hang_child_permille = 150;

  // Two injectors with the same seed draw the same worker schedule.
  FaultInjector a{fc};
  FaultInjector b{fc};
  std::size_t injected = 0;
  for (int i = 0; i < 500; ++i) {
    const auto draw = a.next_worker();
    EXPECT_EQ(draw, b.next_worker()) << "op " << i;
    // Masking: a worker draw never yields an I/O action.
    EXPECT_TRUE(draw == FaultInjector::Action::kNone ||
                draw == FaultInjector::Action::kCrashChild ||
                draw == FaultInjector::Action::kOomChild ||
                draw == FaultInjector::Action::kHangChild);
    if (draw != FaultInjector::Action::kNone) ++injected;
  }
  // ~45% of the range is a worker fault; 500 draws can't all miss.
  EXPECT_GT(injected, 0u);
  EXPECT_EQ(a.injected_total(), injected);

  // And the converse: I/O draws never yield worker actions.
  FaultInjector io{fc};
  for (int i = 0; i < 500; ++i) {
    const auto draw = io.next(i % 2 == 0);
    EXPECT_TRUE(draw != FaultInjector::Action::kCrashChild &&
                draw != FaultInjector::Action::kOomChild &&
                draw != FaultInjector::Action::kHangChild);
  }

  // Disarmed: no draws, and the op counter holds so re-arming resumes
  // the schedule in place.
  FaultInjector paused{fc};
  paused.arm(false);
  EXPECT_EQ(paused.next_worker(), FaultInjector::Action::kNone);
  EXPECT_EQ(paused.ops(), 0u);
}

}  // namespace
}  // namespace qgdp
